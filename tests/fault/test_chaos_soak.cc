/**
 * @file
 * Chaos soak: every conformance policy rides the same full-stack
 * workload while *all* fault families fire together — device errors
 * and timeouts, migration OOM, journal commit crashes, a tier
 * offline/online storm, per-access/scan/copy frame poisoning, and
 * scheduled poison_storm bursts. The strict InvariantChecker replays
 * each run's trace, so hwpoison containment (quarantine, shadow and
 * reread recovery, tier health drains) must compose with every other
 * recovery path under pressure.
 *
 * Determinism is part of the contract: the policy × seed grid runs on
 * the RunPool at 1 and 4 workers and the concatenated serialized
 * traces must be byte-identical — the chaos is seeded, never racy.
 *
 * Worker closures are shared-nothing and gtest-free (errors come back
 * as strings); the main thread asserts.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "base/run_pool.hh"
#include "core/kloc_manager.hh"
#include "fault/fault.hh"
#include "fs/vfs.hh"
#include "kobj/kernel_heap.hh"
#include "mem/placement.hh"
#include "platform/two_tier.hh"
#include "policy/registry.hh"
#include "sim/machine.hh"
#include "trace/invariants.hh"
#include "workload/runner.hh"
#include "workload/workload.hh"

namespace kloc {
namespace {

/** Everything one soak cell reports back to the asserting thread. */
struct SoakResult
{
    std::string policy;
    uint64_t seed = 0;
    uint64_t eventsChecked = 0;
    PoisonStats poison;
    MigrationStats migration;
    std::string trace;  ///< serialized event trace (identity check)
    std::vector<std::string> errors;

    bool ok() const { return errors.empty(); }

    std::string
    summary() const
    {
        std::string out = policy + " seed " + std::to_string(seed) + ":";
        for (const std::string &error : errors)
            out += "\n  " + error;
        return out;
    }
};

/**
 * One soak cell: a registry-built policy hosts a faulted filesystem
 * workload with the whole chaos menu armed. Shared-nothing and
 * deterministic — same (policy, seed) always yields the same trace.
 */
SoakResult
runSoakCell(const std::string &policy_name, uint64_t seed)
{
    SoakResult result;
    result.policy = policy_name;
    result.seed = seed;
    auto check = [&result](bool ok, const char *what) {
        if (!ok)
            result.errors.push_back(what);
        return ok;
    };

    Machine machine(4, 1);
    TierManager tiers(machine);
    LruEngine lru(machine, tiers);
    MemAccessor mem(machine, lru);
    MigrationEngine migrator(machine, tiers, lru);
    KernelHeap heap(mem, tiers);
    KlocManager kloc(heap, migrator);

    TierSpec tspec;
    tspec.name = "fast";
    tspec.capacity = 512 * kPageSize;
    tspec.readLatency = Tick{80};
    tspec.writeLatency = Tick{80};
    tspec.readBandwidth = 10 * kGiB;
    tspec.writeBandwidth = 10 * kGiB;
    const TierId fast = tiers.addTier(tspec);
    tspec.name = "slow";
    tspec.capacity = 1024 * kPageSize;
    tspec.readLatency = Tick{300};
    tspec.writeLatency = Tick{300};
    tspec.readBandwidth = 2 * kGiB;
    tspec.writeBandwidth = 2 * kGiB;
    const TierId slow = tiers.addTier(tspec);

    std::unique_ptr<Policy> policy = makePolicy(
        policy_name, PolicyContext{heap, lru, migrator, &kloc, fast,
                                   slow});
    if (!check(policy != nullptr, "registry failed to build policy"))
        return result;
    policy->install();
    if (!policy->usesKloc()) {
        kloc.setEnabled(false);
        heap.setKlocInterface(false);
    }

    machine.tracer().setEnabled(true);
    InvariantChecker checker(machine.tracer(), /*strict=*/true);

    FileSystem::Config config;
    config.journalCommitPeriod = 20 * kMillisecond;
    config.writebackPeriod = 5 * kMillisecond;
    auto fs = std::make_unique<FileSystem>(heap, &kloc, config);
    // Clean page-cache pages can be re-read off the device when their
    // frame poisons — the second rung of the recovery ladder.
    migrator.setRereadHook(
        [](void *ctx, Frame *frame) {
            return static_cast<FileSystem *>(ctx)->canRereadFrame(frame);
        },
        [](void *ctx, Frame *frame) {
            return static_cast<FileSystem *>(ctx)->rereadFrame(frame);
        },
        fs.get());

    // The full chaos menu. Poison rates are low (poisoning is
    // permanent capacity loss) but the scheduled storms guarantee
    // bursts on both tiers; the second storm lands while the slow
    // tier is health/operator churned.
    FaultSpec fspec;
    std::string err;
    if (!FaultSpec::parse(
            "seed " + std::to_string(seed) + "\n"
            "device_read prob 0.03\n"
            "device_write prob 0.03\n"
            "device_timeout prob 0.01\n"
            "migration_no_space prob 0.1\n"
            "journal_commit_crash prob 0.1\n"
            "frame_poison_access prob 0.0005\n"
            "frame_poison_scan prob 0.001\n"
            "frame_poison_copy prob 0.002\n"
            "tier_offline at 12000000 tier 1\n"
            "tier_online at 30000000 tier 1\n"
            "poison_storm at 8000000 tier 0 frames 4 repeat 3"
            " every 10000000\n"
            "poison_storm at 20000000 tier 1 frames 2\n",
            fspec, &err)) {
        result.errors.push_back("FaultSpec::parse failed: " + err);
        return result;
    }
    machine.faults().configure(fspec);
    migrator.scheduleTierEvents();

    fs->startDaemons();
    policy->start();

    Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);
    struct FileState
    {
        std::string name;
        int fd = -1;
    };
    std::vector<FileState> files;
    uint64_t next_file = 0;
    auto random_file = [&]() -> FileState * {
        if (files.empty())
            return nullptr;
        return &files[rng.nextBounded(files.size())];
    };

    for (int step = 0; step < 500; ++step) {
        machine.setCurrentCpu(static_cast<unsigned>(rng.nextBounded(4)));
        const double action = rng.nextDouble();
        if (action < 0.08 && files.size() < 16) {
            FileState fstate;
            fstate.name = "f" + std::to_string(next_file++);
            fstate.fd = fs->create(fstate.name);
            if (!check(fstate.fd >= 0, "create returned a bad fd"))
                return result;
            files.push_back(fstate);
        } else if (action < 0.14) {
            FileState *f = random_file();
            if (f && f->fd < 0)
                f->fd = fs->open(f->name);
        } else if (action < 0.40) {
            FileState *f = random_file();
            if (!f || f->fd < 0)
                continue;
            fs->write(f->fd, rng.nextBounded(32) * kPageSize,
                      (1 + rng.nextBounded(12)) * kPageSize);
        } else if (action < 0.60) {
            FileState *f = random_file();
            if (!f || f->fd < 0)
                continue;
            fs->read(f->fd, rng.nextBounded(40) * kPageSize,
                     (1 + rng.nextBounded(8)) * kPageSize);
        } else if (action < 0.66) {
            FileState *f = random_file();
            if (f && f->fd >= 0)
                fs->fsync(f->fd);
        } else if (action < 0.74) {
            FileState *f = random_file();
            if (f && f->fd >= 0) {
                fs->close(f->fd);
                f->fd = -1;
            }
        } else if (action < 0.78) {
            for (size_t i = 0; i < files.size(); ++i) {
                if (files[i].fd < 0) {
                    check(fs->unlink(files[i].name),
                          "unlink of a closed file failed");
                    files[i] = files.back();
                    files.pop_back();
                    break;
                }
            }
        } else if (action < 0.86) {
            // Migration churn through the hosted policy's paths, so
            // poison-during-copy and shadow recovery both happen.
            ScanResult scan = lru.scanTier(fast, FrameCount{48});
            if (!scan.demoteCandidates.empty())
                migrator.demoteWithShadows(scan.demoteCandidates, slow);
            auto hot = lru.collectHot(slow, FrameCount{24});
            if (!hot.empty())
                migrator.promoteTransactional(hot, fast,
                                              5 * kMillisecond);
        } else if (action < 0.92) {
            fs->reclaimPages(FrameCount{1 + rng.nextBounded(24)});
        } else {
            machine.charge(
                static_cast<int64_t>(1 + rng.nextBounded(4)) *
                kMillisecond);
        }
    }

    // Let the tier storm finish and health scores decay.
    machine.charge(100 * kMillisecond);
    check(tiers.tier(slow).online(),
          "slow tier neither onlined by schedule nor readmitted");

    machine.faults().clear();
    policy->stop();
    // The harness drove the transactional/shadow paths itself (even
    // under policies that never would), so it also owns the cleanup.
    tiers.dropAllShadows(ShadowDropReason::PolicyStop);
    for (FileState &f : files) {
        if (f.fd >= 0) {
            fs->close(f.fd);
            f.fd = -1;
        }
    }
    fs->stopDaemons();
    fs->syncAll();
    check(!fs->journal().crashed(), "journal still crashed after syncAll");
    for (FileState &f : files)
        check(fs->unlink(f.name), "teardown unlink failed");
    files.clear();
    result.poison = migrator.poisonStats();
    result.migration = migrator.stats();
    fs.reset();

    check(tiers.liveFrames() <= 16 * KmemCache::kEmptyRetention,
          "frames leaked past slab empty-pool retention");
    check(tiers.shadowPages() == 0, "shadow pages leaked at teardown");
    check(checker.outstandingPins() == 0, "outstanding pins at teardown");
    check(checker.eventsChecked() > 0, "checker saw no events");
    if (!checker.clean())
        result.errors.push_back("invariant violations:\n" +
                                checker.report());
    result.eventsChecked = checker.eventsChecked();
    result.trace = machine.tracer().serialize();
    machine.tracer().setEnabled(false);
    return result;
}

constexpr uint64_t kSoakFirstSeed = 601;
constexpr uint64_t kSoakSeedsPerPolicy = 8;

struct SoakCell
{
    std::string policy;
    uint64_t seed;
};

std::vector<SoakCell>
soakGrid()
{
    std::vector<SoakCell> grid;
    for (const std::string &policy : conformancePolicyNames()) {
        for (uint64_t i = 0; i < kSoakSeedsPerPolicy; ++i)
            grid.push_back({policy, kSoakFirstSeed + i});
    }
    return grid;
}

std::vector<SoakResult>
runGrid(unsigned workers)
{
    const std::vector<SoakCell> grid = soakGrid();
    RunPool pool(workers);
    return runIndexed<SoakResult>(pool, grid.size(), [&grid](size_t i) {
        return runSoakCell(grid[i].policy, grid[i].seed);
    });
}

/**
 * The soak proper: every conformance policy × 8 seeds, pooled at 4
 * workers, invariant-clean and non-vacuous (the poison machinery must
 * actually fire for every policy), then re-run at 1 worker and
 * compared byte-for-byte.
 */
TEST(ChaosSoak, AllPoliciesCleanAndByteIdenticalAcrossWorkerCounts)
{
    const std::vector<SoakResult> pooled = runGrid(4);
    ASSERT_EQ(pooled.size(),
              conformancePolicyNames().size() * kSoakSeedsPerPolicy);

    uint64_t cursor = 0;
    for (const std::string &policy : conformancePolicyNames()) {
        uint64_t poisoned = 0, storms = 0, recovered = 0;
        for (uint64_t i = 0; i < kSoakSeedsPerPolicy; ++i) {
            const SoakResult &result = pooled[cursor++];
            EXPECT_TRUE(result.ok()) << result.summary();
            EXPECT_GT(result.eventsChecked, 0u) << result.summary();
            poisoned += result.poison.poisonedFrames;
            storms += result.poison.stormFrames;
            recovered += result.poison.recoveredShadow +
                         result.poison.recoveredReread;
        }
        // Non-vacuity: the chaos reached the containment machinery.
        EXPECT_GT(poisoned, 0u) << policy << ": no frame ever poisoned";
        EXPECT_GT(storms, 0u) << policy << ": no storm burst landed";
        EXPECT_GT(recovered, 0u) << policy << ": no recovery ever ran";
    }

    const std::vector<SoakResult> serial = runGrid(1);
    ASSERT_EQ(serial.size(), pooled.size());
    for (size_t i = 0; i < pooled.size(); ++i) {
        EXPECT_EQ(pooled[i].trace, serial[i].trace)
            << pooled[i].policy << " seed " << pooled[i].seed
            << ": pooled and serial traces diverge";
    }
}

/** One poison-stormed sharded workload run on a fresh platform. */
struct ShardedStormRun
{
    std::string trace;
    PoisonStats poison;
    uint64_t quarantined = 0;
    bool clean = false;
    std::string report;
};

ShardedStormRun
runShardedStorm(const char *workload_name, unsigned workers)
{
    TwoTierPlatform::Config platform_config;
    platform_config.scale = 256;
    TwoTierPlatform platform(platform_config);
    System &sys = platform.sys();
    platform.applyStrategy(StrategyKind::Kloc);

    // Poison chaos only: per-access/scan/copy poisoning plus storm
    // bursts on both tiers, timed to land while the epoch engine is
    // mid-run. All fault consultation happens in serial barrier
    // context (daemons, migrations, and barrier-applied op replays),
    // so the chaos must stay worker-count-invariant.
    FaultSpec fspec;
    std::string err;
    if (!FaultSpec::parse(
            "seed 707\n"
            "frame_poison_access prob 0.0005\n"
            "frame_poison_scan prob 0.001\n"
            "frame_poison_copy prob 0.002\n"
            "poison_storm at 8000000 tier 0 frames 4 repeat 3"
            " every 10000000\n"
            "poison_storm at 20000000 tier 1 frames 2\n",
            fspec, &err)) {
        ADD_FAILURE() << "FaultSpec::parse failed: " << err;
        return {};
    }
    sys.machine().faults().configure(fspec);
    sys.migrator().scheduleTierEvents();
    sys.fs().startDaemons();
    sys.machine().tracer().setEnabled(true);
    InvariantChecker checker(sys.machine().tracer(), /*strict=*/true);

    WorkloadConfig wl_config;
    wl_config.scale = 1024;
    wl_config.operations = 1200;
    wl_config.seed = 7;
    auto workload = makeWorkload(workload_name, wl_config);
    ShardPlan plan;
    plan.workers = workers;
    ShardedWorkloadRunner runner(sys, plan);
    runner.run(*workload);
    sys.machine().faults().clear();
    workload->teardown(sys);

    ShardedStormRun run;
    run.trace = sys.machine().tracer().serialize();
    run.poison = sys.migrator().poisonStats();
    run.quarantined = sys.tiers().quarantinedPages();
    run.clean = checker.clean();
    run.report = checker.report();
    return run;
}

/**
 * Poison storms against sharded scenarios: ShardContext-ported
 * workloads ride the epoch engine while storm bursts and seeded
 * frame poisoning fire. Containment must hold (strict invariants,
 * non-vacuous poisoning) and the whole chaotic run must remain
 * byte-identical between 1 and 4 workers.
 */
TEST(ChaosSoakSharded, PoisonStormsByteIdenticalAcrossWorkerCounts)
{
    for (const char *workload_name : {"thrash", "rocksdb"}) {
        SCOPED_TRACE(workload_name);
        const ShardedStormRun serial = runShardedStorm(workload_name, 1);
        EXPECT_TRUE(serial.clean) << serial.report;
        EXPECT_GT(serial.poison.poisonedFrames, 0u)
            << "storms never reached the sharded run";
        EXPECT_GT(serial.poison.stormFrames, 0u);

        const ShardedStormRun wide = runShardedStorm(workload_name, 4);
        EXPECT_TRUE(wide.clean) << wide.report;
        EXPECT_EQ(serial.trace, wide.trace)
            << "poison-stormed sharded trace diverged across workers";
        EXPECT_EQ(serial.poison.poisonedFrames, wide.poison.poisonedFrames);
        EXPECT_EQ(serial.quarantined, wide.quarantined);
    }
}

/**
 * One serial cell kept as a debugger-friendly repro path. Override
 * the cell with KLOC_SOAK_POLICY / KLOC_SOAK_SEED to replay any grid
 * cell in isolation.
 */
TEST(ChaosSoakSingle, SerialReproPath)
{
    const char *policy_env = std::getenv("KLOC_SOAK_POLICY");
    const char *seed_env = std::getenv("KLOC_SOAK_SEED");
    const std::string policy = policy_env ? policy_env : "nomad";
    const uint64_t seed =
        seed_env ? std::strtoull(seed_env, nullptr, 10) : kSoakFirstSeed;
    const SoakResult result = runSoakCell(policy, seed);
    EXPECT_TRUE(result.ok()) << result.summary();
    EXPECT_GT(result.poison.poisonedFrames, 0u);
}

} // namespace
} // namespace kloc
