/**
 * @file
 * Unit tests for the fault-injection subsystem and the recovery
 * machinery it exercises: spec parsing, injector determinism, device
 * error/timeout retry in the block layer, migration retry/backoff/
 * abandonment, tier offlining with drain, and journal crash-replay.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/kloc_manager.hh"
#include "fault/fault.hh"
#include "fs/block_layer.hh"
#include "fs/device.hh"
#include "fs/journal.hh"
#include "fs/objects.hh"
#include "mem/placement.hh"
#include "sim/machine.hh"
#include "trace/invariants.hh"

namespace kloc {
namespace {

/** Count events of @p type in the tracer's ring. */
uint64_t
countEvents(const Tracer &tracer, TraceEventType type)
{
    uint64_t n = 0;
    for (const TraceEvent &event : tracer.events()) {
        if (event.type == type)
            ++n;
    }
    return n;
}

// ---------------------------------------------------------------------------
// FaultSpec parsing
// ---------------------------------------------------------------------------

TEST(FaultSpec, ParsesAllRuleKindsAndTierEvents)
{
    const std::string text =
        "# comment line\n"
        "seed 42\n"
        "\n"
        "device_write prob 0.25 max 5\n"
        "device_read period 50\n"
        "device_timeout oneshot 3\n"
        "migration_no_space prob 0.5\n"
        "journal_commit_crash oneshot 1\n"
        "tier_offline at 5000000 tier 1\n"
        "tier_online at 9000000 tier 1\n";
    FaultSpec spec;
    std::string err;
    ASSERT_TRUE(FaultSpec::parse(text, spec, &err)) << err;
    EXPECT_TRUE(spec.armed());
    EXPECT_EQ(spec.seed, 42u);

    const auto &write = spec.rules[unsigned(FaultSite::DeviceWrite)];
    EXPECT_EQ(write.mode, FaultRule::Mode::Probability);
    EXPECT_DOUBLE_EQ(write.probability, 0.25);
    EXPECT_EQ(write.maxFires, 5u);

    const auto &read = spec.rules[unsigned(FaultSite::DeviceRead)];
    EXPECT_EQ(read.mode, FaultRule::Mode::Period);
    EXPECT_EQ(read.period, 50u);

    const auto &timeout = spec.rules[unsigned(FaultSite::DeviceTimeout)];
    EXPECT_EQ(timeout.mode, FaultRule::Mode::OneShot);
    EXPECT_EQ(timeout.oneshot, 3u);

    ASSERT_EQ(spec.tierEvents.size(), 2u);
    EXPECT_EQ(spec.tierEvents[0].at, 5000000);
    EXPECT_EQ(spec.tierEvents[0].tier, 1);
    EXPECT_TRUE(spec.tierEvents[0].offline);
    EXPECT_FALSE(spec.tierEvents[1].offline);
}

TEST(FaultSpec, RejectsMalformedInput)
{
    FaultSpec spec;
    std::string err;
    EXPECT_FALSE(FaultSpec::parse("not_a_site prob 0.5\n", spec, &err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(FaultSpec::parse("device_read warble 3\n", spec, &err));
    EXPECT_FALSE(FaultSpec::parse("device_read prob 1.5\n", spec, &err));
    EXPECT_FALSE(FaultSpec::parse("device_read period 0\n", spec, &err));
    EXPECT_FALSE(FaultSpec::parse("tier_offline at 5 socket 1\n", spec,
                                  &err));
    EXPECT_FALSE(FaultSpec::parse("seed\n", spec, &err));
}

TEST(FaultSpec, EmptySpecIsUnarmed)
{
    FaultSpec spec;
    std::string err;
    EXPECT_TRUE(FaultSpec::parse("# nothing here\n\n", spec, &err)) << err;
    EXPECT_FALSE(spec.armed());
}

// ---------------------------------------------------------------------------
// FaultInjector semantics
// ---------------------------------------------------------------------------

struct InjectorTest : ::testing::Test
{
    Machine machine{2, 1};

    FaultInjector &faults() { return machine.faults(); }

    void
    configure(const std::string &text)
    {
        FaultSpec spec;
        std::string err;
        ASSERT_TRUE(FaultSpec::parse(text, spec, &err)) << err;
        faults().configure(spec);
    }
};

TEST_F(InjectorTest, UnconfiguredNeverFires)
{
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(faults().shouldFire(FaultSite::DeviceRead));
    EXPECT_EQ(faults().totalFires(), 0u);
    // Fast path: consults are not even counted while unarmed.
    EXPECT_EQ(faults().siteStats(FaultSite::DeviceRead).consults, 0u);
}

TEST_F(InjectorTest, PeriodFiresEveryNth)
{
    configure("device_read period 4\n");
    std::vector<bool> fires;
    for (int i = 0; i < 12; ++i)
        fires.push_back(faults().shouldFire(FaultSite::DeviceRead));
    for (int i = 0; i < 12; ++i)
        EXPECT_EQ(fires[size_t(i)], (i + 1) % 4 == 0) << "consult " << i;
    EXPECT_EQ(faults().siteStats(FaultSite::DeviceRead).fires, 3u);
}

TEST_F(InjectorTest, OneShotFiresExactlyOnce)
{
    configure("device_write oneshot 3\n");
    int fired_at = -1;
    for (int i = 0; i < 10; ++i) {
        if (faults().shouldFire(FaultSite::DeviceWrite)) {
            EXPECT_EQ(fired_at, -1) << "fired twice";
            fired_at = i;
        }
    }
    EXPECT_EQ(fired_at, 2);  // third consult, zero-indexed
}

TEST_F(InjectorTest, MaxFiresCapsProbabilityRule)
{
    configure("device_read prob 1.0 max 2\n");
    int fires = 0;
    for (int i = 0; i < 10; ++i)
        fires += faults().shouldFire(FaultSite::DeviceRead) ? 1 : 0;
    EXPECT_EQ(fires, 2);
    EXPECT_EQ(faults().totalFires(), 2u);
}

TEST_F(InjectorTest, SameSeedSameSequence)
{
    const std::string spec = "seed 99\ndevice_read prob 0.3\n";
    auto sequence = [&]() {
        configure(spec);
        std::vector<bool> fires;
        for (int i = 0; i < 200; ++i)
            fires.push_back(faults().shouldFire(FaultSite::DeviceRead));
        return fires;
    };
    const auto first = sequence();
    const auto second = sequence();
    EXPECT_EQ(first, second);
}

TEST_F(InjectorTest, DifferentSeedDifferentSequence)
{
    auto sequence = [&](uint64_t seed) {
        configure("seed " + std::to_string(seed) +
                  "\ndevice_read prob 0.3\n");
        std::vector<bool> fires;
        for (int i = 0; i < 200; ++i)
            fires.push_back(faults().shouldFire(FaultSite::DeviceRead));
        return fires;
    };
    EXPECT_NE(sequence(1), sequence(2));
}

TEST_F(InjectorTest, SitesAreIndependent)
{
    configure("seed 5\ndevice_read prob 0.5\ndevice_write prob 0.5\n");
    // Interleaving consults of one site must not perturb the other:
    // record writes alone, then re-configure and interleave reads.
    std::vector<bool> writes_alone;
    for (int i = 0; i < 50; ++i)
        writes_alone.push_back(faults().shouldFire(FaultSite::DeviceWrite));
    configure("seed 5\ndevice_read prob 0.5\ndevice_write prob 0.5\n");
    std::vector<bool> writes_mixed;
    for (int i = 0; i < 50; ++i) {
        faults().shouldFire(FaultSite::DeviceRead);
        writes_mixed.push_back(faults().shouldFire(FaultSite::DeviceWrite));
    }
    EXPECT_EQ(writes_alone, writes_mixed);
}

TEST_F(InjectorTest, FiresEmitTraceEvents)
{
    machine.tracer().setEnabled(true);
    configure("device_read oneshot 2\n");
    faults().shouldFire(FaultSite::DeviceRead);
    faults().shouldFire(FaultSite::DeviceRead);
    EXPECT_EQ(countEvents(machine.tracer(), TraceEventType::FaultInject),
              1u);
}

// ---------------------------------------------------------------------------
// Stack fixture (mirrors the golden-trace TraceStack)
// ---------------------------------------------------------------------------

struct FaultStack
{
    explicit FaultStack(uint64_t fast_pages = 256,
                        uint64_t slow_pages = 256)
        : machine(2, 1), tiers(machine), lru(machine, tiers),
          mem(machine, lru), migrator(machine, tiers, lru),
          heap(mem, tiers), kloc(heap, migrator)
    {
        TierSpec spec;
        spec.name = "fast";
        spec.capacity = fast_pages * kPageSize;
        spec.readLatency = Tick{80};
        spec.writeLatency = Tick{80};
        spec.readBandwidth = 10 * kGiB;
        spec.writeBandwidth = 10 * kGiB;
        fast = tiers.addTier(spec);
        spec.name = "slow";
        spec.capacity = slow_pages * kPageSize;
        spec.readLatency = Tick{300};
        spec.writeLatency = Tick{300};
        spec.readBandwidth = 2 * kGiB;
        spec.writeBandwidth = 2 * kGiB;
        slow = tiers.addTier(spec);

        placement = std::make_unique<StaticPlacement>(
            TierPreference{fast, slow},
            TierPreference{fast, slow});
        heap.setPolicy(placement.get());
        heap.setKlocInterface(true);
        kloc.setEnabled(true);
        kloc.setTierOrder({fast, slow});

        machine.tracer().setEnabled(true);
        checker = std::make_unique<InvariantChecker>(machine.tracer(),
                                                     /*strict=*/true);
    }

    void
    configureFaults(const std::string &text)
    {
        FaultSpec spec;
        std::string err;
        ASSERT_TRUE(FaultSpec::parse(text, spec, &err)) << err;
        machine.faults().configure(spec);
    }

    Machine machine;
    TierManager tiers;
    LruEngine lru;
    MemAccessor mem;
    MigrationEngine migrator;
    KernelHeap heap;
    KlocManager kloc;
    std::unique_ptr<StaticPlacement> placement;
    std::unique_ptr<InvariantChecker> checker;
    TierId fast = kInvalidTier;
    TierId slow = kInvalidTier;
};

// ---------------------------------------------------------------------------
// Block layer retry/backoff
// ---------------------------------------------------------------------------

TEST(BlockLayerFaults, TransientErrorRetriedToSuccess)
{
    FaultStack s;
    BlockDevice device(s.machine, BlockDevice::Config{});
    BlockLayer block(s.heap, &s.kloc, device);
    s.configureFaults("device_write oneshot 1\n");

    const Tick before = s.machine.now();
    const IoStatus status = block.submit(nullptr, true, 0, kPageSize,
                                         /*write=*/true,
                                         /*foreground=*/true);
    EXPECT_EQ(status, IoStatus::Ok);
    EXPECT_EQ(block.bioRetries(), 1u);
    EXPECT_EQ(block.bioErrors(), 0u);
    EXPECT_EQ(device.ioErrors(), 1u);
    // The retry backoff and the error-detection latency were charged.
    EXPECT_GT(s.machine.now() - before, BlockLayer::kRetryBackoffBase);
    EXPECT_EQ(countEvents(s.machine.tracer(), TraceEventType::BioRetry),
              1u);
    EXPECT_TRUE(s.checker->clean()) << s.checker->report();
    EXPECT_EQ(s.checker->outstandingPins(), 0u);
}

TEST(BlockLayerFaults, PersistentErrorExhaustsRetriesAndUnpins)
{
    FaultStack s;
    BlockDevice device(s.machine, BlockDevice::Config{});
    BlockLayer block(s.heap, &s.kloc, device);
    s.configureFaults("device_write prob 1.0\n");

    const IoStatus status = block.submit(nullptr, true, 0, kPageSize,
                                         /*write=*/true,
                                         /*foreground=*/true);
    EXPECT_EQ(status, IoStatus::Error);
    EXPECT_EQ(block.bioErrors(), 1u);
    EXPECT_EQ(block.bioRetries(),
              uint64_t(BlockLayer::kMaxRetries));
    EXPECT_EQ(countEvents(s.machine.tracer(), TraceEventType::BioError),
              1u);
    // The bio completed (failed) and released its frame pin: the
    // frame is free to migrate or be reclaimed.
    EXPECT_TRUE(s.checker->clean()) << s.checker->report();
    EXPECT_EQ(s.checker->outstandingPins(), 0u);
}

TEST(BlockLayerFaults, TimeoutIsRetryableAndCharged)
{
    FaultStack s;
    BlockDevice::Config config;
    BlockDevice device(s.machine, config);
    BlockLayer block(s.heap, &s.kloc, device);
    s.configureFaults("device_timeout oneshot 1\n");

    const Tick before = s.machine.now();
    const IoStatus status = block.submit(nullptr, true, 0, kPageSize,
                                         /*write=*/false,
                                         /*foreground=*/true);
    EXPECT_EQ(status, IoStatus::Ok);
    EXPECT_EQ(device.timeouts(), 1u);
    // The timed-out attempt burned the whole watchdog window.
    EXPECT_GT(s.machine.now() - before, config.timeoutLatency);
    EXPECT_TRUE(s.checker->clean()) << s.checker->report();
}

TEST(BlockLayerFaults, ReadAndWriteSitesAreDistinct)
{
    FaultStack s;
    BlockDevice device(s.machine, BlockDevice::Config{});
    BlockLayer block(s.heap, &s.kloc, device);
    s.configureFaults("device_read prob 1.0\n");

    // Writes are unaffected by a read-error rule.
    EXPECT_EQ(block.submit(nullptr, true, 0, kPageSize, true, true),
              IoStatus::Ok);
    EXPECT_EQ(block.submit(nullptr, true, 512, kPageSize, false, true),
              IoStatus::Error);
}

// ---------------------------------------------------------------------------
// Migration retry / abandonment
// ---------------------------------------------------------------------------

TEST(MigrationFaults, TransientNoSpaceRetriedToSuccess)
{
    FaultStack s;
    s.configureFaults("migration_no_space oneshot 1\n");

    Frame *frame = s.tiers.alloc(0, ObjClass::PageCache, true, {s.fast});
    ASSERT_NE(frame, nullptr);
    EXPECT_TRUE(s.migrator.migrateOne(frame, s.slow));
    EXPECT_EQ(frame->tier, s.slow);
    EXPECT_EQ(s.migrator.stats().noSpaceRetries, 1u);
    EXPECT_EQ(s.migrator.stats().failedNoSpace, 0u);
    EXPECT_EQ(countEvents(s.machine.tracer(), TraceEventType::MigRetry),
              1u);
    s.tiers.free(frame);
    EXPECT_TRUE(s.checker->clean()) << s.checker->report();
}

TEST(MigrationFaults, ExhaustedDestinationAbandonsAndRequeues)
{
    FaultStack s(/*fast_pages=*/256, /*slow_pages=*/4);
    // Fill the slow tier for real: every retry fails, then abandon.
    std::vector<Frame *> fillers;
    while (Frame *f = s.tiers.alloc(0, ObjClass::App, true, {s.slow}))
        fillers.push_back(f);

    Frame *frame = s.tiers.alloc(0, ObjClass::PageCache, true, {s.fast});
    ASSERT_NE(frame, nullptr);
    // A younger allocation leads the inactive list, so the requeue
    // below observably rotates the abandoned frame back to the front.
    Frame *younger = s.tiers.alloc(0, ObjClass::PageCache, true, {s.fast});
    ASSERT_NE(younger, nullptr);
    EXPECT_NE(s.tiers.tier(s.fast).inactiveList().front(), frame);
    EXPECT_FALSE(s.migrator.migrateOne(frame, s.slow));
    EXPECT_EQ(frame->tier, s.fast);  // degraded gracefully: stays put
    EXPECT_EQ(s.migrator.stats().failedNoSpace, 1u);
    EXPECT_EQ(s.migrator.stats().noSpaceRetries,
              uint64_t(MigrationEngine::kMaxNoSpaceRetries));
    EXPECT_EQ(countEvents(s.machine.tracer(), TraceEventType::MigAbandon),
              1u);
    // Abandonment requeued the frame hot: it leads its list again.
    EXPECT_EQ(s.tiers.tier(s.fast).inactiveList().front(), frame);

    s.tiers.free(frame);
    s.tiers.free(younger);
    for (Frame *f : fillers)
        s.tiers.free(f);
    EXPECT_TRUE(s.checker->clean()) << s.checker->report();
}

TEST(MigrationFaults, BatchFailsFastAfterFirstAbandon)
{
    FaultStack s(/*fast_pages=*/256, /*slow_pages=*/4);
    std::vector<Frame *> fillers;
    while (Frame *f = s.tiers.alloc(0, ObjClass::App, true, {s.slow}))
        fillers.push_back(f);

    std::vector<FrameRef> batch;
    std::vector<Frame *> frames;
    for (int i = 0; i < 4; ++i) {
        Frame *f = s.tiers.alloc(0, ObjClass::PageCache, true, {s.fast});
        ASSERT_NE(f, nullptr);
        frames.push_back(f);
        batch.emplace_back(f);
    }
    EXPECT_EQ(s.migrator.migrate(batch, s.slow), 0u);
    EXPECT_EQ(s.migrator.stats().failedNoSpace, 4u);
    // Only the first abandon paid the backoff retries; the rest of
    // the batch failed fast against the proven-full destination.
    EXPECT_EQ(s.migrator.stats().noSpaceRetries,
              uint64_t(MigrationEngine::kMaxNoSpaceRetries));

    for (Frame *f : frames)
        s.tiers.free(f);
    for (Frame *f : fillers)
        s.tiers.free(f);
}

TEST(MigrationFaults, PinnedFrameCountedPerReason)
{
    FaultStack s;
    Frame *frame = s.tiers.alloc(0, ObjClass::PageCache, true, {s.fast});
    ASSERT_NE(frame, nullptr);
    ++frame->pinCount;
    EXPECT_FALSE(s.migrator.migrateOne(frame, s.slow));
    EXPECT_EQ(s.migrator.stats().failedPinned, 1u);
    EXPECT_EQ(s.migrator.stats().failedNoSpace, 0u);
    --frame->pinCount;
    s.tiers.free(frame);
}

// ---------------------------------------------------------------------------
// Tier offline / online
// ---------------------------------------------------------------------------

TEST(TierOffline, DrainMovesResidentFrames)
{
    FaultStack s;
    std::vector<Frame *> frames;
    for (int i = 0; i < 8; ++i) {
        Frame *f = s.tiers.alloc(0, ObjClass::PageCache, true, {s.slow});
        ASSERT_NE(f, nullptr);
        frames.push_back(f);
    }

    const uint64_t stranded = s.migrator.offlineTier(s.slow);
    EXPECT_EQ(stranded, 0u);
    EXPECT_FALSE(s.tiers.tier(s.slow).online());
    for (Frame *f : frames)
        EXPECT_EQ(f->tier, s.fast);
    EXPECT_EQ(countEvents(s.machine.tracer(), TraceEventType::TierOffline),
              1u);
    EXPECT_EQ(countEvents(s.machine.tracer(), TraceEventType::TierDrain),
              1u);

    for (Frame *f : frames)
        s.tiers.free(f);
    EXPECT_TRUE(s.checker->clean()) << s.checker->report();
}

TEST(TierOffline, AllocationsRedirectWhileOffline)
{
    FaultStack s;
    s.migrator.offlineTier(s.slow);
    // Preference names the offline tier first; allocation must skip it.
    Frame *frame = s.tiers.alloc(0, ObjClass::App, true, {s.slow, s.fast});
    ASSERT_NE(frame, nullptr);
    EXPECT_EQ(frame->tier, s.fast);
    s.tiers.free(frame);

    s.migrator.onlineTier(s.slow);
    frame = s.tiers.alloc(0, ObjClass::App, true, {s.slow, s.fast});
    ASSERT_NE(frame, nullptr);
    EXPECT_EQ(frame->tier, s.slow);
    s.tiers.free(frame);
    EXPECT_TRUE(s.checker->clean()) << s.checker->report();
}

TEST(TierOffline, PinnedFrameStrandedThenRecoverable)
{
    FaultStack s;
    Frame *pinned = s.tiers.alloc(0, ObjClass::PageCache, true, {s.slow});
    Frame *movable = s.tiers.alloc(0, ObjClass::PageCache, true, {s.slow});
    ASSERT_NE(pinned, nullptr);
    ASSERT_NE(movable, nullptr);
    ++pinned->pinCount;

    EXPECT_EQ(s.migrator.offlineTier(s.slow), 1u);
    EXPECT_EQ(pinned->tier, s.slow);   // stranded
    EXPECT_EQ(movable->tier, s.fast);  // drained
    EXPECT_GE(s.migrator.stats().failedPinned, 1u);

    // Once the pin drops the frame can be drained by hand.
    --pinned->pinCount;
    EXPECT_TRUE(s.migrator.migrateOne(pinned, s.fast));
    EXPECT_EQ(pinned->tier, s.fast);

    s.tiers.free(pinned);
    s.tiers.free(movable);
    EXPECT_TRUE(s.checker->clean()) << s.checker->report();
}

TEST(TierOffline, ScheduledEventsFireAtTicks)
{
    FaultStack s;
    s.configureFaults("tier_offline at 1000000 tier 1\n"
                      "tier_online at 2000000 tier 1\n");
    s.migrator.scheduleTierEvents();

    EXPECT_TRUE(s.tiers.tier(s.slow).online());
    s.machine.charge(Tick{1100000});
    EXPECT_FALSE(s.tiers.tier(s.slow).online());
    s.machine.charge(Tick{1000000});
    EXPECT_TRUE(s.tiers.tier(s.slow).online());
    EXPECT_TRUE(s.checker->clean()) << s.checker->report();
}

// ---------------------------------------------------------------------------
// Journal crash & replay
// ---------------------------------------------------------------------------

struct JournalCrashTest : ::testing::Test
{
    JournalCrashTest()
        : device(s.machine, BlockDevice::Config{}),
          block(s.heap, &s.kloc, device),
          journal(s.heap, &s.kloc, block)
    {
        knode = s.kloc.mapKnode(7);
        s.kloc.markActive(knode);
    }

    void
    logSomeMetadata()
    {
        journal.logMetadata(knode, true, 7, 2 * kPageSize);
        ASSERT_GT(journal.liveRecords(), 0u);
    }

    FaultStack s;
    BlockDevice device;
    BlockLayer block;
    Journal journal;
    Knode *knode = nullptr;
};

TEST_F(JournalCrashTest, CrashBeforeWritesThenReplay)
{
    logSomeMetadata();
    s.configureFaults("journal_commit_crash oneshot 1\n");
    journal.commit(/*foreground=*/true);
    EXPECT_TRUE(journal.crashed());
    EXPECT_EQ(journal.committedTxs(), 0u);
    EXPECT_GT(journal.liveRecords(), 0u);  // nothing was lost

    // Next commit replays the crashed transaction first.
    journal.commit(/*foreground=*/true);
    EXPECT_FALSE(journal.crashed());
    EXPECT_EQ(journal.committedTxs(), 1u);
    EXPECT_EQ(journal.recoveredTxs(), 1u);
    EXPECT_EQ(journal.liveRecords(), 0u);
    EXPECT_EQ(countEvents(s.machine.tracer(),
                          TraceEventType::JournalReplayEnd), 1u);
    EXPECT_TRUE(s.checker->clean()) << s.checker->report();
}

TEST_F(JournalCrashTest, CrashMidWriteThenReplay)
{
    logSomeMetadata();
    // Consult 1 = before writes; consult 2 = after the first batch.
    s.configureFaults("journal_commit_crash oneshot 2\n");
    journal.commit(/*foreground=*/true);
    EXPECT_TRUE(journal.crashed());
    EXPECT_GT(journal.liveRecords(), 0u);

    journal.commit(/*foreground=*/true);
    EXPECT_FALSE(journal.crashed());
    EXPECT_EQ(journal.recoveredTxs(), 1u);
    EXPECT_EQ(journal.liveRecords(), 0u);
    EXPECT_TRUE(s.checker->clean()) << s.checker->report();
}

TEST_F(JournalCrashTest, CrashAfterWritesThenReplay)
{
    logSomeMetadata();
    // Consult 3 = after all batches (one page batch here), before the
    // in-memory transaction is released.
    s.configureFaults("journal_commit_crash oneshot 3\n");
    journal.commit(/*foreground=*/true);
    EXPECT_TRUE(journal.crashed());

    journal.commit(/*foreground=*/true);
    EXPECT_FALSE(journal.crashed());
    EXPECT_EQ(journal.recoveredTxs(), 1u);
    EXPECT_TRUE(s.checker->clean()) << s.checker->report();
}

TEST_F(JournalCrashTest, NewMetadataAfterCrashJoinsRecoveredTx)
{
    logSomeMetadata();
    s.configureFaults("journal_commit_crash oneshot 1\n");
    journal.commit(true);
    ASSERT_TRUE(journal.crashed());

    // Metadata logged while crashed is recovered along with the tx.
    journal.logMetadata(knode, true, 7, kPageSize);
    journal.commit(true);
    EXPECT_FALSE(journal.crashed());
    EXPECT_EQ(journal.liveRecords(), 0u);
    EXPECT_EQ(journal.committedTxs(), 1u);
    EXPECT_TRUE(s.checker->clean()) << s.checker->report();
}

TEST_F(JournalCrashTest, ReplayFailureStaysCrashedUntilDeviceHeals)
{
    logSomeMetadata();
    s.configureFaults("journal_commit_crash oneshot 1\n"
                      "device_write prob 1.0\n");
    journal.commit(true);
    ASSERT_TRUE(journal.crashed());

    // Replay attempt fails: the device still errors every write.
    journal.commit(true);
    EXPECT_TRUE(journal.crashed());
    EXPECT_EQ(journal.recoveredTxs(), 0u);
    EXPECT_GT(journal.liveRecords(), 0u);

    // Device heals; the next commit replays successfully.
    s.machine.faults().clear();
    journal.commit(true);
    EXPECT_FALSE(journal.crashed());
    EXPECT_EQ(journal.recoveredTxs(), 1u);
    EXPECT_TRUE(s.checker->clean()) << s.checker->report();
}

TEST_F(JournalCrashTest, WriteErrorAbortsCommitAndRetriesLater)
{
    logSomeMetadata();
    s.configureFaults("device_write prob 1.0\n");
    journal.commit(true);
    EXPECT_FALSE(journal.crashed());  // abort, not crash
    EXPECT_EQ(journal.commitAborts(), 1u);
    EXPECT_EQ(journal.committedTxs(), 0u);
    EXPECT_GT(journal.liveRecords(), 0u);
    EXPECT_EQ(countEvents(s.machine.tracer(),
                          TraceEventType::JournalCommitAbort), 1u);

    s.machine.faults().clear();
    journal.commit(true);
    EXPECT_EQ(journal.committedTxs(), 1u);
    EXPECT_EQ(journal.liveRecords(), 0u);
    EXPECT_TRUE(s.checker->clean()) << s.checker->report();
}

// ---------------------------------------------------------------------------
// Pin-balance invariant rules (synthetic event streams)
// ---------------------------------------------------------------------------

struct PinChecker : ::testing::Test
{
    VirtualClock clock;
    Tracer tracer{clock};
    InvariantChecker checker{tracer, /*strict=*/true};

    TraceEvent
    make(TraceEventType type, uint64_t a = 0, uint64_t b = 0,
         uint64_t c = 0, uint64_t d = 0)
    {
        TraceEvent event;
        event.seq = seq++;
        event.tick = Tick{};
        event.type = type;
        event.args[0] = a;
        event.args[1] = b;
        event.args[2] = c;
        event.args[3] = d;
        return event;
    }

    uint64_t seq = 0;
};

TEST_F(PinChecker, BalancedPinUnpinIsClean)
{
    checker.consume(make(TraceEventType::FrameAlloc, 0, 5, 0, 1));
    checker.consume(make(TraceEventType::FramePin, 0, 5));
    checker.consume(make(TraceEventType::FrameUnpin, 0, 5));
    checker.consume(make(TraceEventType::FrameFree, 0, 5, 0, 1));
    EXPECT_TRUE(checker.clean()) << checker.report();
    EXPECT_EQ(checker.outstandingPins(), 0u);
}

TEST_F(PinChecker, FreeWithOutstandingPinViolates)
{
    checker.consume(make(TraceEventType::FrameAlloc, 0, 5, 0, 1));
    checker.consume(make(TraceEventType::FramePin, 0, 5));
    checker.consume(make(TraceEventType::FrameFree, 0, 5, 0, 1));
    EXPECT_FALSE(checker.clean());
}

TEST_F(PinChecker, UnpinWithoutPinViolates)
{
    checker.consume(make(TraceEventType::FrameAlloc, 0, 5, 0, 1));
    checker.consume(make(TraceEventType::FrameUnpin, 0, 5));
    EXPECT_FALSE(checker.clean());
}

TEST_F(PinChecker, MigrationOfPinnedFrameViolates)
{
    checker.consume(make(TraceEventType::FrameAlloc, 0, 5, 0, 1));
    checker.consume(make(TraceEventType::FramePin, 0, 5));
    checker.consume(make(TraceEventType::MigStart, 0, 5, 1, 9));
    EXPECT_FALSE(checker.clean());
}

TEST_F(PinChecker, OutstandingPinsCounted)
{
    checker.consume(make(TraceEventType::FrameAlloc, 0, 5, 0, 1));
    checker.consume(make(TraceEventType::FrameAlloc, 0, 6, 0, 1));
    checker.consume(make(TraceEventType::FramePin, 0, 5));
    EXPECT_EQ(checker.outstandingPins(), 1u);
    checker.consume(make(TraceEventType::FrameUnpin, 0, 5));
    EXPECT_EQ(checker.outstandingPins(), 0u);
}

TEST_F(PinChecker, OfflineTierAllocationViolates)
{
    checker.consume(make(TraceEventType::TierOffline, 1));
    checker.consume(make(TraceEventType::FrameAlloc, 1, 5, 0, 1));
    EXPECT_FALSE(checker.clean());
}

TEST_F(PinChecker, OfflineTierMigrationArrivalViolates)
{
    checker.consume(make(TraceEventType::FrameAlloc, 0, 5, 0, 1));
    checker.consume(make(TraceEventType::TierOffline, 1));
    checker.consume(make(TraceEventType::MigStart, 0, 5, 1, 9));
    EXPECT_FALSE(checker.clean());
}

// ---------------------------------------------------------------------------
// FaultSpec parser diagnostics: every rejection names the line and
// the offending token, so a bad chaos spec is debuggable from the
// error string alone.
// ---------------------------------------------------------------------------

/** Parse expecting failure; return the diagnostic. */
std::string
diagnose(const std::string &text)
{
    FaultSpec spec;
    std::string err;
    EXPECT_FALSE(FaultSpec::parse(text, spec, &err)) << text;
    EXPECT_FALSE(err.empty()) << text;
    return err;
}

bool
mentions(const std::string &err, const std::string &needle)
{
    return err.find(needle) != std::string::npos;
}

TEST(FaultSpecDiagnostics, NamesTheFailingLine)
{
    const std::string err = diagnose("seed 1\n"
                                     "device_read period 50\n"
                                     "device_read warble 3\n");
    EXPECT_TRUE(mentions(err, "line 3")) << err;
    EXPECT_TRUE(mentions(err, "'warble'")) << err;
}

TEST(FaultSpecDiagnostics, UnknownSiteNamesToken)
{
    const std::string err = diagnose("not_a_site prob 0.5\n");
    EXPECT_TRUE(mentions(err, "line 1")) << err;
    EXPECT_TRUE(mentions(err, "unknown fault site 'not_a_site'")) << err;
}

TEST(FaultSpecDiagnostics, ProbabilityRangeNamesValue)
{
    const std::string err = diagnose("device_read prob 1.5\n");
    EXPECT_TRUE(mentions(err, "prob needs a value in [0,1]")) << err;
    EXPECT_TRUE(mentions(err, "'1.5'")) << err;
}

TEST(FaultSpecDiagnostics, ZeroPeriodRejected)
{
    const std::string err = diagnose("device_read period 0\n");
    EXPECT_TRUE(mentions(err, "period needs a positive count")) << err;
    EXPECT_TRUE(mentions(err, "'0'")) << err;
}

TEST(FaultSpecDiagnostics, ZeroOneshotRejected)
{
    const std::string err = diagnose("device_write oneshot 0\n");
    EXPECT_TRUE(mentions(err, "oneshot needs a positive consult"))
        << err;
}

TEST(FaultSpecDiagnostics, ZeroMaxRejected)
{
    const std::string err = diagnose("device_read period 2 max 0\n");
    EXPECT_TRUE(mentions(err, "max needs a positive count")) << err;
}

TEST(FaultSpecDiagnostics, TrailingTokensNamed)
{
    const std::string err = diagnose("device_read period 2 bogus\n");
    EXPECT_TRUE(mentions(err, "trailing tokens")) << err;
    EXPECT_TRUE(mentions(err, "'bogus'")) << err;
}

TEST(FaultSpecDiagnostics, MalformedSeed)
{
    EXPECT_TRUE(mentions(diagnose("seed x\n"), "expected 'seed <n>'"));
}

TEST(FaultSpecDiagnostics, MalformedTierEventEchoesLine)
{
    const std::string err = diagnose("tier_offline at 5 socket 1\n");
    EXPECT_TRUE(mentions(err, "tier_offline at <tick> tier <id>"))
        << err;
    EXPECT_TRUE(mentions(err, "socket")) << err;
}

TEST(FaultSpecDiagnostics, PoisonStormGrammarErrors)
{
    EXPECT_TRUE(mentions(diagnose("poison_storm at 5 tier 0\n"),
                         "poison_storm at <tick> tier <id> frames"));
    EXPECT_TRUE(mentions(
        diagnose("poison_storm at 5 tier 0 frames 0\n"),
        "frames needs a positive count"));
    EXPECT_TRUE(mentions(
        diagnose("poison_storm at 5 tier 0 frames 2 repeat 0 every 9\n"),
        "repeat needs a positive count"));
    EXPECT_TRUE(mentions(
        diagnose("poison_storm at 5 tier 0 frames 2 repeat 3 every 0\n"),
        "every needs a positive tick count"));
    const std::string err =
        diagnose("poison_storm at 5 tier 0 frames 2 repeat 3\n");
    EXPECT_TRUE(mentions(err, "trailing tokens")) << err;
    EXPECT_TRUE(mentions(err, "'repeat...")) << err;
}

TEST(FaultSpecDiagnostics, PoisonStormFullGrammarParses)
{
    FaultSpec spec;
    std::string err;
    ASSERT_TRUE(FaultSpec::parse(
        "poison_storm at 2000000 tier 1 frames 8 repeat 4 every 500000\n"
        "poison_storm at 7000000 tier 0 frames 2\n",
        spec, &err)) << err;
    EXPECT_TRUE(spec.armed());
    ASSERT_EQ(spec.poisonStorms.size(), 2u);
    EXPECT_EQ(spec.poisonStorms[0].at, Tick{2000000});
    EXPECT_EQ(spec.poisonStorms[0].tier, 1);
    EXPECT_EQ(spec.poisonStorms[0].frames, 8u);
    EXPECT_EQ(spec.poisonStorms[0].repeat, 4u);
    EXPECT_EQ(spec.poisonStorms[0].every, Tick{500000});
    EXPECT_EQ(spec.poisonStorms[1].frames, 2u);
    EXPECT_EQ(spec.poisonStorms[1].repeat, 1u);
}

// ---------------------------------------------------------------------------
// Hwpoison containment: the poisonFrame recovery ladder
// ---------------------------------------------------------------------------

TEST(PoisonLifecycle, PinnedFrameIsDataLossInPlace)
{
    FaultStack s;
    Frame *frame = s.tiers.alloc(0, ObjClass::PageCache, true, {s.fast});
    ASSERT_NE(frame, nullptr);
    ++frame->pinCount;

    EXPECT_FALSE(s.migrator.poisonFrame(frame, PoisonOrigin::Access));
    EXPECT_TRUE(frame->poisoned);
    EXPECT_EQ(frame->tier, s.fast);  // contained in place, not moved
    EXPECT_EQ(s.migrator.poisonStats().poisonedFrames, 1u);
    EXPECT_EQ(s.migrator.poisonStats().dataLoss, 1u);
    EXPECT_EQ(countEvents(s.machine.tracer(), TraceEventType::FramePoison),
              1u);
    EXPECT_EQ(countEvents(s.machine.tracer(), TraceEventType::DataLoss),
              1u);

    // Re-poisoning the same frame is idempotent: no second event.
    EXPECT_FALSE(s.migrator.poisonFrame(frame, PoisonOrigin::Scan));
    EXPECT_EQ(countEvents(s.machine.tracer(), TraceEventType::FramePoison),
              1u);

    --frame->pinCount;
    s.tiers.free(frame);
    // Freeing a poisoned frame quarantines its block instead of
    // returning it to the buddy allocator.
    EXPECT_EQ(countEvents(s.machine.tracer(),
                          TraceEventType::FrameQuarantine), 1u);
    EXPECT_EQ(s.tiers.quarantinedPages(), 1u);
    EXPECT_TRUE(s.checker->clean()) << s.checker->report();
}

TEST(PoisonLifecycle, QuarantinedBlockNeverReallocated)
{
    FaultStack s(/*fast_pages=*/8, /*slow_pages=*/8);
    Frame *frame = s.tiers.alloc(0, ObjClass::App, true, {s.fast});
    ASSERT_NE(frame, nullptr);
    const Pfn bad = frame->pfn;

    // No shadow, no reread hook: the poison is unrecoverable data
    // loss and the frame stays in place until its owner frees it.
    EXPECT_FALSE(s.migrator.poisonFrame(frame, PoisonOrigin::Access));
    EXPECT_EQ(s.migrator.poisonStats().dataLoss, 1u);
    s.tiers.free(frame);
    ASSERT_EQ(s.tiers.quarantinedPages(), 1u);

    // Drain the whole tier: the quarantined pfn never comes back.
    std::vector<Frame *> all;
    while (Frame *f = s.tiers.alloc(0, ObjClass::App, true, {s.fast})) {
        EXPECT_NE(f->pfn, bad);
        all.push_back(f);
    }
    EXPECT_EQ(all.size(), 7u);  // 8 pages minus the quarantined one
    for (Frame *f : all)
        s.tiers.free(f);
    EXPECT_TRUE(s.checker->clean()) << s.checker->report();
}

TEST(PoisonLifecycle, CleanShadowRecoversForFree)
{
    FaultStack s;
    Frame *frame = s.tiers.alloc(0, ObjClass::App, true, {s.slow});
    ASSERT_NE(frame, nullptr);

    // Transactional promotion leaves a clean slow-tier shadow behind.
    ASSERT_EQ(s.migrator.promoteTransactional({FrameRef(frame)}, s.fast,
                                              Tick{0}), 1u);
    ASSERT_TRUE(frame->hasShadow());
    ASSERT_TRUE(frame->shadowClean());
    const Pfn shadow_pfn = frame->shadowPfn;

    EXPECT_TRUE(s.migrator.poisonFrame(frame, PoisonOrigin::Access));
    // The frame re-adopted its shadow: back on slow, poison cleared,
    // the poisoned fast block quarantined.
    EXPECT_EQ(frame->tier, s.slow);
    EXPECT_EQ(frame->pfn, shadow_pfn);
    EXPECT_FALSE(frame->poisoned);
    EXPECT_FALSE(frame->hasShadow());
    EXPECT_EQ(s.migrator.poisonStats().recoveredShadow, 1u);
    EXPECT_EQ(s.migrator.poisonStats().dataLoss, 0u);
    EXPECT_EQ(countEvents(s.machine.tracer(), TraceEventType::MemRecover),
              1u);
    EXPECT_EQ(s.tiers.quarantinedPages(), 1u);

    s.tiers.free(frame);
    EXPECT_TRUE(s.checker->clean()) << s.checker->report();
}

TEST(PoisonLifecycle, RereadHookRecoversPageCacheFrame)
{
    FaultStack s;
    s.migrator.setRereadHook(
        [](void *, Frame *) { return true; },
        [](void *, Frame *) { return true; },
        nullptr);
    Frame *frame = s.tiers.alloc(0, ObjClass::PageCache, true, {s.fast});
    ASSERT_NE(frame, nullptr);

    EXPECT_TRUE(s.migrator.poisonFrame(frame, PoisonOrigin::Scan));
    // Evacuated off the poisoned block and re-read from the device.
    EXPECT_EQ(frame->tier, s.slow);
    EXPECT_FALSE(frame->poisoned);
    EXPECT_EQ(s.migrator.poisonStats().recoveredReread, 1u);
    EXPECT_EQ(countEvents(s.machine.tracer(), TraceEventType::MemRecover),
              1u);
    EXPECT_EQ(s.tiers.quarantinedPages(), 1u);
    // The pin held across the device read was released.
    EXPECT_EQ(countEvents(s.machine.tracer(), TraceEventType::FramePin),
              countEvents(s.machine.tracer(), TraceEventType::FrameUnpin));

    s.tiers.free(frame);
    EXPECT_TRUE(s.checker->clean()) << s.checker->report();
    EXPECT_EQ(s.checker->outstandingPins(), 0u);
}

TEST(PoisonLifecycle, RereadFailureIsDataLoss)
{
    FaultStack s;
    s.migrator.setRereadHook(
        [](void *, Frame *) { return true; },
        [](void *, Frame *) { return false; },  // device read fails
        nullptr);
    Frame *frame = s.tiers.alloc(0, ObjClass::PageCache, true, {s.fast});
    ASSERT_NE(frame, nullptr);

    EXPECT_FALSE(s.migrator.poisonFrame(frame, PoisonOrigin::Access));
    EXPECT_EQ(s.migrator.poisonStats().recoveredReread, 0u);
    EXPECT_EQ(s.migrator.poisonStats().dataLoss, 1u);
    EXPECT_EQ(countEvents(s.machine.tracer(), TraceEventType::DataLoss),
              1u);

    s.tiers.free(frame);
    EXPECT_TRUE(s.checker->clean()) << s.checker->report();
}

TEST(PoisonLifecycle, NoShadowNoBackingIsDataLoss)
{
    FaultStack s;
    Frame *frame = s.tiers.alloc(0, ObjClass::App, true, {s.fast});
    ASSERT_NE(frame, nullptr);

    EXPECT_FALSE(s.migrator.poisonFrame(frame, PoisonOrigin::Copy));
    EXPECT_TRUE(frame->poisoned);
    EXPECT_EQ(s.migrator.poisonStats().dataLoss, 1u);

    s.tiers.free(frame);
    EXPECT_EQ(s.tiers.quarantinedPages(), 1u);
    EXPECT_TRUE(s.checker->clean()) << s.checker->report();
}

TEST(PoisonLifecycle, StormBurstsFireOnSchedule)
{
    FaultStack s;
    std::vector<Frame *> frames;
    for (int i = 0; i < 8; ++i) {
        Frame *f = s.tiers.alloc(0, ObjClass::App, true, {s.fast});
        ASSERT_NE(f, nullptr);
        frames.push_back(f);
    }
    s.configureFaults(
        "poison_storm at 1000000 tier 0 frames 3 repeat 2 every 1000000\n");
    s.migrator.scheduleTierEvents();

    s.machine.charge(Tick{1100000});
    EXPECT_EQ(s.migrator.poisonStats().stormFrames, 3u);
    EXPECT_EQ(countEvents(s.machine.tracer(), TraceEventType::PoisonStorm),
              1u);
    s.machine.charge(Tick{1000000});
    EXPECT_EQ(s.migrator.poisonStats().stormFrames, 6u);
    EXPECT_EQ(countEvents(s.machine.tracer(), TraceEventType::PoisonStorm),
              2u);

    for (Frame *f : frames)
        s.tiers.free(f);
    EXPECT_EQ(s.tiers.quarantinedPages(), 6u);
    EXPECT_TRUE(s.checker->clean()) << s.checker->report();
}

TEST(PoisonLifecycle, StormOnMissingTierIsHarmless)
{
    FaultStack s;
    s.configureFaults("poison_storm at 1000 tier 9 frames 4\n");
    s.migrator.scheduleTierEvents();
    s.machine.charge(Tick{2000});
    EXPECT_EQ(s.migrator.poisonStats().stormFrames, 0u);
    // The burst still traces, reporting zero frames poisoned.
    EXPECT_EQ(countEvents(s.machine.tracer(), TraceEventType::PoisonStorm),
              1u);
    EXPECT_TRUE(s.checker->clean()) << s.checker->report();
}

// ---------------------------------------------------------------------------
// Tier health state machine
// ---------------------------------------------------------------------------

TEST(TierHealthMachine, ErrorsDegradeThenFailThenAutoDrain)
{
    FaultStack s;
    Frame *resident = s.tiers.alloc(0, ObjClass::App, true, {s.slow});
    ASSERT_NE(resident, nullptr);

    // kDegradeScore / kErrorScore errors flip the tier to Degraded.
    for (int i = 0; i < 4; ++i)
        s.tiers.recordTierError(s.slow);
    EXPECT_EQ(s.tiers.health(s.slow), TierHealth::Degraded);
    EXPECT_GE(countEvents(s.machine.tracer(), TraceEventType::TierHealth),
              1u);

    // Degraded tiers sink to the back of any preference order.
    const TierPreference pref = s.tiers.preferHealthy({s.slow, s.fast});
    ASSERT_EQ(pref.size(), 2u);
    EXPECT_EQ(pref[0], s.fast);
    EXPECT_EQ(pref[1], s.slow);

    // Push on to Failed: the tier schedules its own offline drain.
    for (int i = 0; i < 12; ++i)
        s.tiers.recordTierError(s.slow);
    EXPECT_EQ(s.tiers.health(s.slow), TierHealth::Failed);
    s.machine.charge(Tick{1});
    EXPECT_FALSE(s.tiers.tier(s.slow).online());
    EXPECT_EQ(resident->tier, s.fast);  // drained off the failed tier

    // Idle decay walks the score back down; recovery re-onlines the
    // tier because health (not an operator) took it out. Each charge
    // dispatches one pending tick, so idle time comes in tick-sized
    // slices (as it does in any real run).
    for (int i = 0; i < 40; ++i)
        s.machine.charge(TierManager::kHealthTickPeriod);
    EXPECT_EQ(s.tiers.health(s.slow), TierHealth::Healthy);
    EXPECT_TRUE(s.tiers.tier(s.slow).online());

    s.tiers.free(resident);
    EXPECT_TRUE(s.checker->clean()) << s.checker->report();
}

TEST(TierHealthMachine, DegradedRecoversWithoutOffline)
{
    FaultStack s;
    for (int i = 0; i < 4; ++i)
        s.tiers.recordTierError(s.slow);
    EXPECT_EQ(s.tiers.health(s.slow), TierHealth::Degraded);
    EXPECT_TRUE(s.tiers.tier(s.slow).online());  // degraded ≠ offline

    for (int i = 0; i < 40; ++i)
        s.machine.charge(TierManager::kHealthTickPeriod);
    EXPECT_EQ(s.tiers.health(s.slow), TierHealth::Healthy);
    EXPECT_EQ(s.tiers.healthScore(s.slow), 0u);
    EXPECT_TRUE(s.checker->clean()) << s.checker->report();
}

TEST(TierHealthMachine, OperatorOfflineIsNotReadmittedByHealth)
{
    FaultStack s;
    s.migrator.offlineTier(s.slow);  // operator action, not health
    for (int i = 0; i < 16; ++i)
        s.tiers.recordTierError(s.slow);
    EXPECT_EQ(s.tiers.health(s.slow), TierHealth::Failed);

    // Health recovery must NOT online a tier an operator took out.
    for (int i = 0; i < 40; ++i)
        s.machine.charge(TierManager::kHealthTickPeriod);
    EXPECT_EQ(s.tiers.health(s.slow), TierHealth::Healthy);
    EXPECT_FALSE(s.tiers.tier(s.slow).online());

    s.migrator.onlineTier(s.slow);
    EXPECT_TRUE(s.tiers.tier(s.slow).online());
    EXPECT_TRUE(s.checker->clean()) << s.checker->report();
}

TEST(TierHealthMachine, HealthObserverSeesTransitions)
{
    FaultStack s;
    struct Seen
    {
        std::vector<std::pair<TierHealth, TierHealth>> transitions;
    } seen;
    s.tiers.addHealthObserver(
        [](void *ctx, TierId, TierHealth from, TierHealth to) {
            static_cast<Seen *>(ctx)->transitions.emplace_back(from, to);
        },
        &seen);

    for (int i = 0; i < 16; ++i)
        s.tiers.recordTierError(s.fast);
    ASSERT_EQ(seen.transitions.size(), 2u);
    EXPECT_EQ(seen.transitions[0].first, TierHealth::Healthy);
    EXPECT_EQ(seen.transitions[0].second, TierHealth::Degraded);
    EXPECT_EQ(seen.transitions[1].first, TierHealth::Degraded);
    EXPECT_EQ(seen.transitions[1].second, TierHealth::Failed);
}

// ---------------------------------------------------------------------------
// Containment invariant rules (synthetic event streams)
// ---------------------------------------------------------------------------

using PoisonChecker = PinChecker;

TEST_F(PoisonChecker, QuarantineThenReallocationViolates)
{
    checker.consume(make(TraceEventType::FrameAlloc, 0, 5, 0, 1));
    checker.consume(make(TraceEventType::FramePoison, 0, 5, 0, 0));
    checker.consume(make(TraceEventType::FrameFree, 0, 5, 0, 1));
    checker.consume(make(TraceEventType::FrameQuarantine, 0, 5, 0));
    EXPECT_TRUE(checker.clean()) << checker.report();
    checker.consume(make(TraceEventType::FrameAlloc, 0, 5, 0, 1));
    EXPECT_FALSE(checker.clean());
}

TEST_F(PoisonChecker, DoubleQuarantineViolates)
{
    checker.consume(make(TraceEventType::FrameAlloc, 0, 5, 0, 1));
    checker.consume(make(TraceEventType::FramePoison, 0, 5, 0, 0));
    checker.consume(make(TraceEventType::FrameFree, 0, 5, 0, 1));
    checker.consume(make(TraceEventType::FrameQuarantine, 0, 5, 0));
    checker.consume(make(TraceEventType::FrameQuarantine, 0, 5, 0));
    EXPECT_FALSE(checker.clean());
}

TEST_F(PoisonChecker, QuarantineOfLiveFrameViolates)
{
    checker.consume(make(TraceEventType::FrameAlloc, 0, 5, 0, 1));
    checker.consume(make(TraceEventType::FrameQuarantine, 0, 5, 0));
    EXPECT_FALSE(checker.clean());
}

TEST_F(PoisonChecker, RePoisonViolates)
{
    checker.consume(make(TraceEventType::FrameAlloc, 0, 5, 0, 1));
    checker.consume(make(TraceEventType::FramePoison, 0, 5, 0, 0));
    checker.consume(make(TraceEventType::FramePoison, 0, 5, 1, 0));
    EXPECT_FALSE(checker.clean());
}

TEST_F(PoisonChecker, UnknownPoisonOriginViolates)
{
    checker.consume(make(TraceEventType::FrameAlloc, 0, 5, 0, 1));
    checker.consume(make(TraceEventType::FramePoison, 0, 5, 9, 0));
    EXPECT_FALSE(checker.clean());
}

TEST_F(PoisonChecker, RecoveryFromUnquarantinedSourceViolates)
{
    // MemRecover's old frame key was never quarantined.
    checker.consume(make(TraceEventType::FrameAlloc, 0, 5, 0, 1));
    checker.consume(make(TraceEventType::MemRecover,
                         traceFrameKey(0, Pfn{5}),
                         traceFrameKey(1, Pfn{9}), 0));
    EXPECT_FALSE(checker.clean());
}

TEST_F(PoisonChecker, ValidRecoverySequenceIsClean)
{
    // The stream the real engine emits for a reread recovery, reduced
    // to its checker-visible spine: poison, evacuate (the MigStart
    // scrubs the poison bit off the moving frame), quarantine the old
    // block, then record the recovery old→new.
    checker.consume(make(TraceEventType::FrameAlloc, 0, 5, 0, 1));
    checker.consume(make(TraceEventType::FramePoison, 0, 5, 0, 0));
    checker.consume(make(TraceEventType::MigStart, 0, 5, 1, 9));
    checker.consume(make(TraceEventType::MigComplete, 1, 9, 1, 1));
    checker.consume(make(TraceEventType::FrameQuarantine, 0, 5, 0));
    checker.consume(make(TraceEventType::MemRecover,
                         traceFrameKey(1, Pfn{9}),
                         traceFrameKey(0, Pfn{5}), 1));
    checker.consume(make(TraceEventType::FrameFree, 1, 9, 0, 1));
    EXPECT_TRUE(checker.clean()) << checker.report();
    EXPECT_EQ(checker.quarantinedCount(), 1u);
}

TEST_F(PoisonChecker, TierHealthTransitionsMustBeAdjacent)
{
    checker.consume(make(TraceEventType::TierHealth, 0, 0, 2, 20000));
    EXPECT_FALSE(checker.clean());
}

TEST_F(PoisonChecker, TierHealthFromMustMatchModel)
{
    // Model says tier 0 is Healthy; the event claims Degraded→Failed.
    checker.consume(make(TraceEventType::TierHealth, 0, 1, 2, 20000));
    EXPECT_FALSE(checker.clean());
}

TEST_F(PoisonChecker, DegradeBelowThresholdViolates)
{
    checker.consume(make(TraceEventType::TierHealth, 0, 0, 1, 1000));
    EXPECT_FALSE(checker.clean());
}

TEST_F(PoisonChecker, ValidHealthCycleIsClean)
{
    checker.consume(make(TraceEventType::TierHealth, 0, 0, 1, 4000));
    checker.consume(make(TraceEventType::TierHealth, 0, 1, 2, 16000));
    checker.consume(make(TraceEventType::TierHealth, 0, 2, 1, 5000));
    checker.consume(make(TraceEventType::TierHealth, 0, 1, 0, 900));
    EXPECT_TRUE(checker.clean()) << checker.report();
}

TEST_F(PoisonChecker, StormCountExceedingRequestViolates)
{
    checker.consume(make(TraceEventType::PoisonStorm, 0, 2, 3));
    EXPECT_FALSE(checker.clean());
}

TEST_F(PoisonChecker, DataLossOnUnknownFrameViolatesInStrict)
{
    checker.consume(make(TraceEventType::DataLoss, 0, 5, 0, 1));
    EXPECT_FALSE(checker.clean());
}

// ---------------------------------------------------------------------------
// Journal crash-replay racing a tier-offline drain
// ---------------------------------------------------------------------------

TEST_F(JournalCrashTest, ReplayAfterTierOfflineDrain)
{
    logSomeMetadata();
    s.configureFaults("journal_commit_crash oneshot 1\n");
    journal.commit(/*foreground=*/true);
    ASSERT_TRUE(journal.crashed());
    s.machine.faults().clear();

    // While the journal sits crashed, the fast tier (where its
    // buffers live) drains offline. The crashed transaction's records
    // must survive the relocation and replay cleanly afterwards. A
    // pinned journal buffer may legitimately strand on the offline
    // tier; everything else must move.
    const uint64_t stranded = s.migrator.offlineTier(s.fast);
    EXPECT_LE(stranded, 1u);
    ASSERT_FALSE(s.tiers.tier(s.fast).online());

    journal.commit(/*foreground=*/true);
    EXPECT_FALSE(journal.crashed());
    EXPECT_EQ(journal.recoveredTxs(), 1u);
    EXPECT_EQ(journal.liveRecords(), 0u);

    s.migrator.onlineTier(s.fast);
    EXPECT_TRUE(s.checker->clean()) << s.checker->report();
    EXPECT_EQ(s.checker->outstandingPins(), 0u);
}

} // namespace
} // namespace kloc
