/**
 * @file
 * Randomised fault fuzzing: a full filesystem stack runs a random
 * syscall workload while the fault injector fires device errors,
 * timeouts, migration OOM, and journal commit crashes, and a tier is
 * offlined and onlined mid-run. The whole run executes with tracing
 * on and the InvariantChecker attached in strict mode, so every
 * recovery path must preserve the cross-subsystem ordering rules:
 * pins balance, journal frames are only released inside commit/replay
 * windows, offline tiers take no arrivals, and nothing leaks.
 *
 * Seeds run as a sweep on the RunPool (KLOC_JOBS workers): each seed
 * is a shared-nothing closure that builds its own machine stack and
 * returns failures as strings; the main thread asserts. Worker
 * threads must not touch gtest assertion macros — they record into
 * the per-seed FuzzResult instead.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "base/run_pool.hh"
#include "core/kloc_manager.hh"
#include "fault/fault.hh"
#include "fs/vfs.hh"
#include "kobj/kernel_heap.hh"
#include "mem/placement.hh"
#include "policy/registry.hh"
#include "sim/machine.hh"
#include "trace/invariants.hh"

namespace kloc {
namespace {

/** Everything one fuzz seed reports back to the asserting thread. */
struct FuzzResult
{
    uint64_t seed = 0;
    uint64_t eventsChecked = 0;
    MigrationStats migration;
    PoisonStats poison;
    std::vector<std::string> errors;

    bool ok() const { return errors.empty(); }

    std::string
    summary() const
    {
        std::string out = "seed " + std::to_string(seed) + ":";
        for (const std::string &error : errors)
            out += "\n  " + error;
        return out;
    }
};

/**
 * Run one fuzz seed to completion. Shared-nothing (fresh machine,
 * tracer and RNG per call) and gtest-free, so calls may execute
 * concurrently on RunPool workers.
 *
 * With an empty @p policy_name the stack runs the classic static
 * placement (the original 24-seed sweep, unchanged). A non-empty
 * name hosts that registry-built policy instead, so its scan ticks,
 * transactional copies, and shadow bookkeeping all run under the
 * same fault storm.
 *
 * With @p poison set, the hwpoison sites arm too (access/scan/copy
 * probabilities plus scheduled poison_storm bursts on both tiers) and
 * the page-cache reread hook is wired, so the full containment ladder
 * runs inside the storm.
 */
FuzzResult
runFuzzSeed(uint64_t seed, const std::string &policy_name = {},
            bool poison = false)
{
    FuzzResult result;
    result.seed = seed;
    auto check = [&result](bool ok, const char *what) {
        if (!ok)
            result.errors.push_back(what);
        return ok;
    };

    Machine machine(4, 1);
    TierManager tiers(machine);
    LruEngine lru(machine, tiers);
    MemAccessor mem(machine, lru);
    MigrationEngine migrator(machine, tiers, lru);
    KernelHeap heap(mem, tiers);
    KlocManager kloc(heap, migrator);

    TierSpec tspec;
    tspec.name = "fast";
    tspec.capacity = 512 * kPageSize;
    tspec.readLatency = Tick{80};
    tspec.writeLatency = Tick{80};
    tspec.readBandwidth = 10 * kGiB;
    tspec.writeBandwidth = 10 * kGiB;
    const TierId fast = tiers.addTier(tspec);
    tspec.name = "slow";
    tspec.capacity = 1024 * kPageSize;
    tspec.readLatency = Tick{300};
    tspec.writeLatency = Tick{300};
    tspec.readBandwidth = 2 * kGiB;
    tspec.writeBandwidth = 2 * kGiB;
    const TierId slow = tiers.addTier(tspec);

    StaticPlacement placement({fast, slow}, {fast, slow});
    std::unique_ptr<Policy> policy;
    if (policy_name.empty()) {
        heap.setPolicy(&placement);
        heap.setKlocInterface(true);
        kloc.setEnabled(true);
        kloc.setTierOrder({fast, slow});
    } else {
        policy = makePolicy(policy_name,
                            PolicyContext{heap, lru, migrator, &kloc,
                                          fast, slow});
        if (!check(policy != nullptr, "registry failed to build policy"))
            return result;
        policy->install();
        if (!policy->usesKloc()) {
            kloc.setEnabled(false);
            heap.setKlocInterface(false);
        }
    }

    // Attach the checker before any allocation so strict mode sees
    // every entity's full lifecycle.
    machine.tracer().setEnabled(true);
    InvariantChecker checker(machine.tracer(), /*strict=*/true);

    FileSystem::Config config;
    config.journalCommitPeriod = 20 * kMillisecond;
    config.writebackPeriod = 5 * kMillisecond;
    auto fs = std::make_unique<FileSystem>(heap, &kloc, config);
    if (poison) {
        migrator.setRereadHook(
            [](void *ctx, Frame *frame) {
                return static_cast<FileSystem *>(ctx)->canRereadFrame(
                    frame);
            },
            [](void *ctx, Frame *frame) {
                return static_cast<FileSystem *>(ctx)->rereadFrame(frame);
            },
            fs.get());
    }

    // Arm every fault site at once, plus a mid-run offline/online
    // cycle of the slow tier. Rates are high enough that every
    // recovery path runs many times per seed.
    std::string spec_text =
        "seed " + std::to_string(seed) + "\n"
        "device_read prob 0.05\n"
        "device_write prob 0.05\n"
        "device_timeout prob 0.02\n"
        "migration_no_space prob 0.2\n"
        "journal_commit_crash prob 0.25\n"
        "tier_offline at 30000000 tier 1\n"
        "tier_online at 60000000 tier 1\n";
    if (poison) {
        spec_text +=
            "frame_poison_access prob 0.0005\n"
            "frame_poison_scan prob 0.001\n"
            "frame_poison_copy prob 0.002\n"
            "poison_storm at 10000000 tier 0 frames 4 repeat 3"
            " every 15000000\n"
            "poison_storm at 40000000 tier 1 frames 2\n";
    }
    FaultSpec fspec;
    std::string err;
    if (!FaultSpec::parse(spec_text, fspec, &err)) {
        result.errors.push_back("FaultSpec::parse failed: " + err);
        return result;
    }
    machine.faults().configure(fspec);
    migrator.scheduleTierEvents();

    fs->startDaemons();
    if (policy)
        policy->start();

    Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);
    struct FileState
    {
        std::string name;
        int fd = -1;  ///< -1 while closed
    };
    std::vector<FileState> files;
    uint64_t next_file = 0;

    auto random_file = [&]() -> FileState * {
        if (files.empty())
            return nullptr;
        return &files[rng.nextBounded(files.size())];
    };

    for (int step = 0; step < 1200; ++step) {
        machine.setCurrentCpu(static_cast<unsigned>(rng.nextBounded(4)));
        const double action = rng.nextDouble();
        if (action < 0.08 && files.size() < 24) {
            FileState fstate;
            fstate.name = "f" + std::to_string(next_file++);
            fstate.fd = fs->create(fstate.name);
            if (!check(fstate.fd >= 0, "create returned a bad fd"))
                return result;
            files.push_back(fstate);
        } else if (action < 0.16) {
            FileState *f = random_file();
            if (f && f->fd < 0)
                f->fd = fs->open(f->name);
        } else if (action < 0.42) {
            FileState *f = random_file();
            if (!f || f->fd < 0)
                continue;
            const Bytes offset = rng.nextBounded(32) * kPageSize;
            const Bytes length = (1 + rng.nextBounded(16)) * kPageSize;
            fs->write(f->fd, offset, length);
        } else if (action < 0.62) {
            FileState *f = random_file();
            if (!f || f->fd < 0)
                continue;
            const Bytes offset = rng.nextBounded(48) * kPageSize;
            fs->read(f->fd, offset, (1 + rng.nextBounded(8)) * kPageSize);
        } else if (action < 0.68) {
            FileState *f = random_file();
            if (f && f->fd >= 0)
                fs->fsync(f->fd);
        } else if (action < 0.72) {
            FileState *f = random_file();
            if (f && f->fd >= 0)
                fs->truncate(f->fd, rng.nextBounded(24) * kPageSize);
        } else if (action < 0.80) {
            FileState *f = random_file();
            if (f && f->fd >= 0) {
                fs->close(f->fd);
                f->fd = -1;
            }
        } else if (action < 0.84) {
            // Unlink a closed file.
            for (size_t i = 0; i < files.size(); ++i) {
                if (files[i].fd < 0) {
                    check(fs->unlink(files[i].name),
                          "unlink of a closed file failed");
                    files[i] = files.back();
                    files.pop_back();
                    break;
                }
            }
        } else if (action < 0.89) {
            // Exercise the migration fault site from both directions.
            // Under a hosted policy take the transactional/shadow
            // paths so copy aborts and shadow reuse also run while
            // faults fire.
            ScanResult scan = lru.scanTier(fast, FrameCount{64});
            if (!scan.demoteCandidates.empty()) {
                if (policy)
                    migrator.demoteWithShadows(scan.demoteCandidates,
                                               slow);
                else
                    migrator.migrate(scan.demoteCandidates, slow);
            }
            auto hot = lru.collectHot(slow, FrameCount{32});
            if (!hot.empty()) {
                if (policy)
                    migrator.promoteTransactional(hot, fast,
                                                  5 * kMillisecond);
                else
                    migrator.migrate(hot, fast);
            }
        } else if (action < 0.93) {
            fs->reclaimPages(FrameCount{1 + rng.nextBounded(32)});
        } else {
            // Idle time lets the daemons and scheduled tier events run.
            machine.charge(
                static_cast<int64_t>(1 + rng.nextBounded(4)) * kMillisecond);
        }
    }

    // Make sure the scheduled offline *and* online events both fired.
    machine.charge(100 * kMillisecond);
    check(tiers.tier(slow).online(), "slow tier never came back online");

    // Heal the device so teardown's flush-and-replay can complete,
    // then tear the filesystem down completely.
    machine.faults().clear();
    if (policy)
        policy->stop();
    for (FileState &f : files) {
        if (f.fd >= 0) {
            fs->close(f.fd);
            f.fd = -1;
        }
    }
    fs->stopDaemons();
    fs->syncAll();
    check(!fs->journal().crashed(), "journal still crashed after syncAll");
    for (FileState &f : files)
        check(fs->unlink(f.name), "teardown unlink failed");
    files.clear();
    fs.reset();

    // Everything must have come back: no leaked frames beyond slab
    // empty-pool retention, no outstanding pins, no violations.
    check(tiers.liveFrames() <= 16 * KmemCache::kEmptyRetention,
          "frames leaked past slab empty-pool retention");
    check(tiers.shadowPages() == 0, "shadow pages leaked at teardown");
    check(checker.outstandingPins() == 0, "outstanding pins at teardown");
    check(checker.eventsChecked() > 0, "checker saw no events");
    if (!checker.clean())
        result.errors.push_back("invariant violations:\n" +
                                checker.report());
    result.eventsChecked = checker.eventsChecked();
    result.migration = migrator.stats();
    result.poison = migrator.poisonStats();
    machine.tracer().setEnabled(false);
    return result;
}

/** Acceptance floor is 20 clean seeds; run a few extra. */
constexpr uint64_t kFirstSeed = 1;
constexpr uint64_t kSeedCount = 24;

TEST(FaultFuzzSweep, AllSeedsCleanUnderInjectedFaults)
{
    RunPool pool(RunPool::defaultWorkers());
    const std::vector<FuzzResult> results = runIndexed<FuzzResult>(
        pool, kSeedCount,
        [](size_t i) { return runFuzzSeed(kFirstSeed + i); });

    for (const FuzzResult &result : results) {
        EXPECT_TRUE(result.ok()) << result.summary();
        EXPECT_GT(result.eventsChecked, 0u)
            << "seed " << result.seed << " checked no events";
    }
}

/**
 * A single seed run directly on the test thread — keeps one serial
 * repro path (`--gtest_filter=FaultFuzzSingle*`) for debugging pool
 * failures without the pool in the way.
 */
TEST(FaultFuzzSingle, SerialReproPath)
{
    const FuzzResult result = runFuzzSeed(kFirstSeed);
    EXPECT_TRUE(result.ok()) << result.summary();
}

/**
 * Policy sweep: the shadow-copy (Nomad) and rate-adaptive (Jenga)
 * strategies host the same faulted stack through the registry, so
 * transactional aborts, shadow reclaim across the tier offline/online
 * storm, and adaptive scan batching all run under device faults. The
 * strict checker enforces shadow-consistency throughout; teardown
 * additionally requires zero surviving shadow pages.
 */
TEST(FaultFuzzPolicySweep, NomadAndJengaStayInvariantClean)
{
    constexpr uint64_t kPolicyFirstSeed = 101;
    constexpr uint64_t kPolicySeedCount = 8;
    RunPool pool(RunPool::defaultWorkers());

    for (const std::string policy : {"nomad", "jenga"}) {
        const std::vector<FuzzResult> results = runIndexed<FuzzResult>(
            pool, kPolicySeedCount, [&policy](size_t i) {
                return runFuzzSeed(kPolicyFirstSeed + i, policy);
            });
        uint64_t txn_begins = 0;
        uint64_t shadow_makes = 0;
        for (const FuzzResult &result : results) {
            EXPECT_TRUE(result.ok())
                << policy << " " << result.summary();
            EXPECT_GT(result.eventsChecked, 0u)
                << policy << " seed " << result.seed
                << " checked no events";
            txn_begins += result.migration.txnBegins;
            shadow_makes += result.migration.shadowMakes;
        }
        if (policy == "nomad") {
            // The sweep must actually reach the transactional-copy
            // machinery, not just pass vacuously.
            EXPECT_GT(txn_begins, 0u);
            EXPECT_GT(shadow_makes, 0u);
        }
    }
}

/**
 * Poison-armed sweep: the same per-policy fuzz runs again with the
 * hwpoison sites live and storms scheduled on both tiers, so frame
 * quarantine, shadow/reread recovery, and tier-health degradation all
 * interleave with device faults, journal crashes, and the tier
 * offline/online storm. Strict-checker clean, and non-vacuous: every
 * policy's sweep must poison frames and land storm bursts.
 */
TEST(FaultFuzzPoisonSweep, PoisonStormsStayInvariantClean)
{
    constexpr uint64_t kPoisonFirstSeed = 301;
    constexpr uint64_t kPoisonSeedCount = 8;
    RunPool pool(RunPool::defaultWorkers());

    for (const std::string policy : {"nomad", "jenga"}) {
        const std::vector<FuzzResult> results = runIndexed<FuzzResult>(
            pool, kPoisonSeedCount, [&policy](size_t i) {
                return runFuzzSeed(kPoisonFirstSeed + i, policy,
                                   /*poison=*/true);
            });
        uint64_t poisoned = 0, storms = 0;
        for (const FuzzResult &result : results) {
            EXPECT_TRUE(result.ok()) << policy << " " << result.summary();
            poisoned += result.poison.poisonedFrames;
            storms += result.poison.stormFrames;
        }
        EXPECT_GT(poisoned, 0u) << policy << ": no frame ever poisoned";
        EXPECT_GT(storms, 0u) << policy << ": no storm burst landed";
    }
}

} // namespace
} // namespace kloc
