/**
 * @file
 * Filesystem sub-component tests: the block device timing model,
 * the bio/blk-mq path, the journal lifecycle, and the per-inode
 * page cache (including radix-node kernel-object accounting).
 */

#include <gtest/gtest.h>

#include "fs/block_layer.hh"
#include "fs/device.hh"
#include "fs/journal.hh"
#include "fs/page_cache.hh"
#include "mem/placement.hh"
#include "sim/machine.hh"

namespace kloc {
namespace {

class FsUnitTest : public ::testing::Test
{
  protected:
    FsUnitTest()
        : machine(4, 1), tiers(machine), lru(machine, tiers),
          mem(machine, lru), migrator(machine, tiers, lru),
          heap(mem, tiers), kloc(heap, migrator),
          device(machine, BlockDevice::Config{})
    {
        TierSpec spec;
        spec.name = "fast";
        spec.capacity = 512 * kPageSize;
        spec.readLatency = Tick{80};
        spec.writeLatency = Tick{80};
        spec.readBandwidth = 10 * kGiB;
        spec.writeBandwidth = 10 * kGiB;
        fastId = tiers.addTier(spec);
        spec.name = "slow";
        spec.capacity = 512 * kPageSize;
        slowId = tiers.addTier(spec);
        placement = std::make_unique<StaticPlacement>(
            TierPreference{fastId, slowId},
            TierPreference{fastId, slowId});
        heap.setPolicy(placement.get());
        heap.setKlocInterface(true);
        kloc.setEnabled(true);
        kloc.setTierOrder({fastId, slowId});
    }

    Machine machine;
    TierManager tiers;
    LruEngine lru;
    MemAccessor mem;
    MigrationEngine migrator;
    KernelHeap heap;
    KlocManager kloc;
    BlockDevice device;
    std::unique_ptr<StaticPlacement> placement;
    TierId fastId = kInvalidTier;
    TierId slowId = kInvalidTier;
};

TEST_F(FsUnitTest, DeviceSequentialFasterThanRandom)
{
    BlockDevice::Config config;
    BlockDevice dev(machine, config);
    // Sequential stream.
    Tick seq_cost{};
    uint64_t sector = 0;
    for (int i = 0; i < 16; ++i) {
        seq_cost += dev.transferCost(sector, 64 * kKiB);
        sector += 64 * kKiB / BlockDevice::kSectorSize;
    }
    // Random stream of the same volume.
    Tick rand_cost{};
    for (int i = 0; i < 16; ++i)
        rand_cost += dev.transferCost((i * 977 + 13) * 1000000ULL,
                                      64 * kKiB);
    EXPECT_GT(rand_cost, seq_cost);
    EXPECT_EQ(dev.requests(), 32u);
    EXPECT_EQ(dev.bytesTransferred(), 32ULL * 64 * kKiB);
}

TEST_F(FsUnitTest, BioLifecycleAndKnodeTracking)
{
    BlockLayer block(heap, &kloc, device);
    Knode *knode = kloc.mapKnode(1);
    const Tick before = machine.now();
    block.submit(knode, true, 0, kPageSize, true, false);
    EXPECT_GT(machine.now(), before);
    EXPECT_EQ(block.biosSubmitted(), 1u);
    // The bio was freed on completion: nothing left in the knode
    // besides nothing (bio removed), and lifetimes were recorded.
    EXPECT_EQ(knode->objectCount(), 0u);
    EXPECT_EQ(heap.objLifetimeHist(KobjKind::Bio).dist().count(), 1u);
    kloc.unmapKnode(knode);
}

TEST_F(FsUnitTest, ForegroundCostsMoreThanBackground)
{
    BlockLayer block(heap, &kloc, device);
    const Tick t0 = machine.now();
    block.submit(nullptr, true, 1000000, 64 * kKiB, false, true);
    const Tick foreground = machine.now() - t0;
    const Tick t1 = machine.now();
    block.submit(nullptr, true, 9000000, 64 * kKiB, false, false);
    const Tick background = machine.now() - t1;
    EXPECT_GT(foreground, background);
}

TEST_F(FsUnitTest, JournalLifecycle)
{
    BlockLayer block(heap, &kloc, device);
    Journal journal(heap, &kloc, block);
    Knode *knode = kloc.mapKnode(1);

    journal.logMetadata(knode, true, 1, Bytes{256});
    EXPECT_EQ(journal.liveRecords(), 1u);
    EXPECT_GT(knode->rbSlab.size(), 0u);

    // A page worth of metadata pins a journal buffer page.
    journal.logMetadata(knode, true, 1, kPageSize);
    EXPECT_GT(knode->rbCache.size(), 0u);

    journal.commit(false);
    EXPECT_EQ(journal.liveRecords(), 0u);
    EXPECT_EQ(knode->objectCount(), 0u);
    EXPECT_EQ(journal.committedTxs(), 1u);
    // Journal object lifetimes were recorded (Fig. 2d's short tail).
    EXPECT_GT(
        heap.objLifetimeHist(KobjKind::JournalRecord).dist().count(), 0u);
    kloc.unmapKnode(knode);
}

TEST_F(FsUnitTest, JournalDetachInodeAllowsUnmap)
{
    BlockLayer block(heap, &kloc, device);
    Journal journal(heap, &kloc, block);
    Knode *knode = kloc.mapKnode(1);
    journal.logMetadata(knode, true, 1, Bytes{256});
    ASSERT_GT(knode->objectCount(), 0u);
    journal.detachInode(1);
    EXPECT_EQ(knode->objectCount(), 0u);
    kloc.unmapKnode(knode);  // must not assert
    journal.commit(false);   // records freed without a knode
}

TEST_F(FsUnitTest, JournalCommitTimer)
{
    BlockLayer block(heap, &kloc, device);
    Journal journal(heap, &kloc, block);
    journal.startCommitTimer(10 * kMillisecond);
    journal.logMetadata(nullptr, true, 5, Bytes{256});
    EXPECT_EQ(journal.committedTxs(), 0u);
    machine.charge(11 * kMillisecond);
    EXPECT_EQ(journal.committedTxs(), 1u);
    journal.stopCommitTimer();
}

TEST_F(FsUnitTest, PageCacheInsertFindRemove)
{
    PageCache cache(heap, &kloc, 1, /*data_backed=*/false);
    Knode *knode = kloc.mapKnode(1);
    cache.setKnode(knode);

    EXPECT_EQ(cache.find(0), nullptr);
    PageCachePage *page = cache.insertNew(0, true);
    ASSERT_NE(page, nullptr);
    EXPECT_EQ(cache.find(0), page);
    EXPECT_EQ(cache.pageCount(), 1u);
    EXPECT_EQ(page->knode, knode);
    EXPECT_GT(knode->rbCache.size(), 0u);

    cache.removeAndFree(page);
    EXPECT_EQ(cache.find(0), nullptr);
    EXPECT_EQ(cache.pageCount(), 0u);
    kloc.unmapKnode(knode);
}

TEST_F(FsUnitTest, PageCacheDirtyTracking)
{
    PageCache cache(heap, &kloc, 1, false);
    PageCachePage *a = cache.insertNew(3, true);
    PageCachePage *b = cache.insertNew(7, true);
    cache.markDirty(a);
    cache.markDirty(a);  // idempotent
    EXPECT_EQ(cache.dirtyCount(), 1u);
    auto dirty = cache.dirtyPages(0, FrameCount{10});
    ASSERT_EQ(dirty.size(), 1u);
    EXPECT_EQ(dirty[0], a);
    cache.clearDirty(a);
    EXPECT_EQ(cache.dirtyCount(), 0u);
    EXPECT_TRUE(cache.dirtyPages(0, FrameCount{10}).empty());
    cache.removeAndFree(a);
    cache.removeAndFree(b);
}

TEST_F(FsUnitTest, PageCacheCollectDirtyReusesBuffer)
{
    PageCache cache(heap, &kloc, 1, false);
    std::vector<PageCachePage *> pages;
    for (uint64_t i = 0; i < 32; ++i) {
        PageCachePage *page = cache.insertNew(i * 5, true);
        ASSERT_NE(page, nullptr);
        cache.markDirty(page);
        pages.push_back(page);
    }

    // The out-param walk agrees with the allocating form...
    std::vector<PageCachePage *> out;
    cache.collectDirty(0, FrameCount{64}, out);
    EXPECT_EQ(out, cache.dirtyPages(0, FrameCount{64}));
    ASSERT_EQ(out.size(), 32u);

    // ...clears stale contents, honours start/max...
    cache.collectDirty(10 * 5, FrameCount{4}, out);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0], pages[10]);

    // ...and once warm never reallocates the caller's buffer.
    cache.collectDirty(0, FrameCount{64}, out);
    const auto *warm_data = out.data();
    for (int pass = 0; pass < 8; ++pass) {
        cache.collectDirty(0, FrameCount{64}, out);
        EXPECT_EQ(out.data(), warm_data);
    }

    for (PageCachePage *page : pages)
        cache.removeAndFree(page);
}

TEST_F(FsUnitTest, RadixNodesAreKernelObjects)
{
    PageCache cache(heap, &kloc, 1, false);
    Knode *knode = kloc.mapKnode(1);
    cache.setKnode(knode);
    const uint64_t before =
        tiers.tier(fastId).residentPages(ObjClass::FsSlab) +
        tiers.tier(slowId).residentPages(ObjClass::FsSlab);
    std::vector<PageCachePage *> pages;
    for (uint64_t i = 0; i < 200; ++i)
        pages.push_back(cache.insertNew(i * 100, true));
    const uint64_t after =
        tiers.tier(fastId).residentPages(ObjClass::FsSlab) +
        tiers.tier(slowId).residentPages(ObjClass::FsSlab);
    EXPECT_GT(after, before) << "radix nodes did not allocate slab pages";
    for (PageCachePage *page : pages)
        cache.removeAndFree(page);
    kloc.unmapKnode(knode);
}

TEST_F(FsUnitTest, DataBackedPagesCarryContents)
{
    PageCache cache(heap, &kloc, 1, /*data_backed=*/true);
    PageCachePage *page = cache.insertNew(0, true);
    ASSERT_NE(page, nullptr);
    ASSERT_NE(page->data, nullptr);
    page->data[100] = 42;
    EXPECT_EQ(cache.find(0)->data[100], 42);
    cache.removeAndFree(page);
}

TEST_F(FsUnitTest, PageCacheDestructorDrains)
{
    const uint64_t baseline = tiers.liveFrames();
    {
        PageCache cache(heap, &kloc, 1, false);
        for (uint64_t i = 0; i < 50; ++i)
            cache.insertNew(i, true);
    }
    // All page frames and radix-node slab pages released (modulo
    // slab empty-pool retention inside the kind caches).
    EXPECT_LE(tiers.liveFrames(),
              baseline + KmemCache::kEmptyRetention);
}

} // namespace
} // namespace kloc
