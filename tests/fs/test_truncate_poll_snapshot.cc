/**
 * @file
 * Tests for truncate(), socket poll(), and System::snapshot().
 */

#include <gtest/gtest.h>

#include "platform/two_tier.hh"

namespace kloc {
namespace {

std::unique_ptr<TwoTierPlatform>
makePlatform()
{
    TwoTierPlatform::Config config;
    config.scale = 256;
    auto platform = std::make_unique<TwoTierPlatform>(config);
    platform->applyStrategy(StrategyKind::Kloc);
    return platform;
}

TEST(Truncate, ShrinkFreesPagesAndExtents)
{
    auto platform = makePlatform();
    System &sys = platform->sys();
    const int fd = sys.fs().create("t");
    sys.fs().write(fd, Bytes{0}, 1200 * kPageSize);  // > 2 extents
    const uint64_t cached_before = sys.fs().cachedPages();
    ASSERT_TRUE(sys.fs().truncate(fd, 100 * kPageSize));
    EXPECT_EQ(sys.fs().fileSize("t"), 100 * kPageSize);
    EXPECT_LT(sys.fs().cachedPages(), cached_before);
    EXPECT_EQ(sys.fs().cachedPages(), 100u);
    // Reads past the new end return nothing.
    EXPECT_EQ(sys.fs().read(fd, 100 * kPageSize, kPageSize), 0u);
    // Reads below it still work.
    EXPECT_EQ(sys.fs().read(fd, Bytes{0}, kPageSize), kPageSize);
    sys.fs().close(fd);
}

TEST(Truncate, ToZeroEmptiesCache)
{
    auto platform = makePlatform();
    System &sys = platform->sys();
    const int fd = sys.fs().create("t");
    sys.fs().write(fd, Bytes{0}, 64 * kPageSize);
    ASSERT_TRUE(sys.fs().truncate(fd, Bytes{0}));
    EXPECT_EQ(sys.fs().fileSize("t"), 0u);
    EXPECT_EQ(sys.fs().cachedPages(), 0u);
    // The file is reusable afterwards.
    EXPECT_EQ(sys.fs().write(fd, Bytes{0}, kPageSize), kPageSize);
    sys.fs().close(fd);
}

TEST(Truncate, GrowIsSparse)
{
    auto platform = makePlatform();
    System &sys = platform->sys();
    const int fd = sys.fs().create("t");
    sys.fs().write(fd, Bytes{0}, kPageSize);
    ASSERT_TRUE(sys.fs().truncate(fd, 100 * kPageSize));
    EXPECT_EQ(sys.fs().fileSize("t"), 100 * kPageSize);
    EXPECT_EQ(sys.fs().cachedPages(), 1u) << "grow must not allocate";
    sys.fs().close(fd);
}

TEST(Truncate, BadFdFails)
{
    auto platform = makePlatform();
    EXPECT_FALSE(platform->sys().fs().truncate(999, Bytes{0}));
}

TEST(Poll, ReportsReadinessAndKeepsKlocHot)
{
    auto platform = makePlatform();
    System &sys = platform->sys();
    const int sd = sys.net().socket();
    EXPECT_FALSE(sys.net().poll(sd));
    sys.net().deliver(sd, Bytes{1000});
    EXPECT_TRUE(sys.net().poll(sd));
    Knode *knode = sys.net().knodeOf(sd);
    ASSERT_NE(knode, nullptr);
    EXPECT_TRUE(knode->inuse);
    EXPECT_EQ(knode->age, 0u);
    sys.net().recv(sd, Bytes{~0ULL});
    EXPECT_FALSE(sys.net().poll(sd));
    EXPECT_FALSE(sys.net().poll(12345)) << "unknown sd must be falsy";
    sys.net().closeSocket(sd);
}

TEST(Snapshot, ExportsAllSubsystems)
{
    auto platform = makePlatform();
    System &sys = platform->sys();
    sys.fs().startDaemons();
    const int fd = sys.fs().create("s");
    sys.fs().write(fd, Bytes{0}, 32 * kPageSize);
    sys.fs().close(fd);
    const int sd = sys.net().socket();
    sys.net().deliver(sd, Bytes{5000});
    sys.net().recv(sd, Bytes{~0ULL});

    const StatSet stats = sys.snapshot();
    EXPECT_GT(stats.get("time_ms"), 0.0);
    EXPECT_GT(stats.get("kernel_refs"), 0.0);
    EXPECT_GT(stats.get("fs.writes"), 0.0);
    EXPECT_GT(stats.get("fs.cached_pages"), 0.0);
    EXPECT_GT(stats.get("net.packets_delivered"), 0.0);
    EXPECT_EQ(stats.get("kloc.enabled"), 1.0);
    EXPECT_GT(stats.get("kloc.knodes_created"), 0.0);
    EXPECT_TRUE(stats.has("tier.fast-dram.utilization"));
    EXPECT_TRUE(stats.has("tier.slow-dram.resident.page_cache"));
    // Renders without crashing and contains a known key.
    EXPECT_NE(stats.toString().find("fs.writes"), std::string::npos);
    sys.net().closeSocket(sd);
    sys.fs().unlink("s");
}

} // namespace
} // namespace kloc
