/**
 * @file
 * VFS integration tests: syscall semantics, data integrity in
 * data-backed mode, the knode lifecycle rules of §3.2, readahead,
 * writeback, reclaim, and the dentry cache.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "fs/vfs.hh"
#include "mem/placement.hh"
#include "sim/machine.hh"

namespace kloc {
namespace {

class VfsTest : public ::testing::Test
{
  protected:
    explicit VfsTest(bool data_backed = false)
        : machine(4, 1), tiers(machine), lru(machine, tiers),
          mem(machine, lru), migrator(machine, tiers, lru),
          heap(mem, tiers), kloc(heap, migrator)
    {
        TierSpec spec;
        spec.name = "fast";
        spec.capacity = 1024 * kPageSize;
        spec.readLatency = Tick{80};
        spec.writeLatency = Tick{80};
        spec.readBandwidth = 10 * kGiB;
        spec.writeBandwidth = 10 * kGiB;
        fastId = tiers.addTier(spec);
        spec.name = "slow";
        spec.capacity = 4096 * kPageSize;
        slowId = tiers.addTier(spec);
        placement = std::make_unique<StaticPlacement>(
            TierPreference{fastId, slowId},
            TierPreference{fastId, slowId});
        heap.setPolicy(placement.get());
        heap.setKlocInterface(true);
        kloc.setEnabled(true);
        kloc.setTierOrder({fastId, slowId});

        FileSystem::Config config;
        config.dataBacked = data_backed;
        fs = std::make_unique<FileSystem>(heap, &kloc, config);
    }

    Machine machine;
    TierManager tiers;
    LruEngine lru;
    MemAccessor mem;
    MigrationEngine migrator;
    KernelHeap heap;
    KlocManager kloc;
    std::unique_ptr<StaticPlacement> placement;
    std::unique_ptr<FileSystem> fs;
    TierId fastId = kInvalidTier;
    TierId slowId = kInvalidTier;
};

TEST_F(VfsTest, CreateOpenCloseSemantics)
{
    const int fd = fs->create("a");
    ASSERT_GE(fd, 0);
    EXPECT_TRUE(fs->exists("a"));
    EXPECT_EQ(fs->create("a"), -1) << "duplicate create must fail";
    EXPECT_EQ(fs->open("missing"), -1);
    const int fd2 = fs->open("a");
    ASSERT_GE(fd2, 0);
    EXPECT_NE(fd, fd2);
    fs->close(fd);
    fs->close(fd2);
    EXPECT_EQ(fs->liveInodes(), 1u);
}

TEST_F(VfsTest, WriteExtendsAndReadClamps)
{
    const int fd = fs->create("f");
    EXPECT_EQ(fs->write(fd, Bytes{0}, Bytes{10000}), 10000u);
    EXPECT_EQ(fs->fileSize("f"), 10000u);
    EXPECT_EQ(fs->write(fd, Bytes{5000}, Bytes{1000}), 1000u);  // overwrite
    EXPECT_EQ(fs->fileSize("f"), 10000u);
    EXPECT_EQ(fs->read(fd, Bytes{0}, Bytes{20000}), 10000u) << "read past EOF";
    EXPECT_EQ(fs->read(fd, Bytes{10000}, Bytes{100}), 0u);
    fs->close(fd);
}

TEST_F(VfsTest, UnlinkRules)
{
    const int fd = fs->create("f");
    fs->write(fd, Bytes{0}, kPageSize * 4);
    EXPECT_FALSE(fs->unlink("f")) << "unlink of an open file";
    fs->close(fd);
    const uint64_t cached_before = fs->cachedPages();
    EXPECT_GT(cached_before, 0u);
    EXPECT_TRUE(fs->unlink("f"));
    EXPECT_FALSE(fs->exists("f"));
    EXPECT_EQ(fs->liveInodes(), 0u);
    EXPECT_EQ(fs->cachedPages(), 0u)
        << "unlink must deallocate cached pages (§3.2)";
    EXPECT_FALSE(fs->unlink("f")) << "double unlink";
}

TEST_F(VfsTest, KnodeLifecycleFollowsFile)
{
    ASSERT_EQ(kloc.knodeCount(), 0u);
    const int fd = fs->create("f");
    EXPECT_EQ(kloc.knodeCount(), 1u);
    Knode *knode = fs->knodeOf("f");
    ASSERT_NE(knode, nullptr);
    EXPECT_TRUE(knode->inuse);
    // Inode + dentry are tracked immediately.
    EXPECT_GE(knode->objectCount(), 2u);

    fs->write(fd, Bytes{0}, 64 * kKiB);
    EXPECT_GT(knode->rbCache.size(), 0u) << "cache pages not tracked";

    fs->close(fd);
    EXPECT_FALSE(knode->inuse) << "close must mark the KLOC inactive";

    fs->unlink("f");
    EXPECT_EQ(kloc.knodeCount(), 0u) << "knode must die with the inode";
}

TEST_F(VfsTest, PageCacheHitsAfterFirstRead)
{
    const int fd = fs->create("f");
    fs->write(fd, Bytes{0}, 256 * kPageSize);
    fs->fsync(fd);
    // First read may be served from cache (written pages are
    // uptodate); stats must show pure hits.
    fs->read(fd, Bytes{0}, 256 * kPageSize);
    EXPECT_EQ(fs->stats().readPageMisses, 0u);
    EXPECT_GT(fs->stats().readPageHits, 0u);
    fs->close(fd);
}

TEST_F(VfsTest, ReadMissHitsDevice)
{
    const int fd = fs->create("f");
    fs->write(fd, Bytes{0}, 64 * kPageSize);
    fs->fsync(fd);
    fs->close(fd);
    // Drop the cache via reclaim, then re-read.
    const uint64_t freed = fs->reclaimPages(FrameCount{64});
    EXPECT_GT(freed, 0u);
    const uint64_t reqs_before = fs->device().requests();
    const int fd2 = fs->open("f");
    fs->read(fd2, Bytes{0}, 64 * kPageSize);
    EXPECT_GT(fs->stats().readPageMisses, 0u);
    EXPECT_GT(fs->device().requests(), reqs_before);
    fs->close(fd2);
}

TEST_F(VfsTest, FsyncCleansDirtyPages)
{
    const int fd = fs->create("f");
    fs->write(fd, Bytes{0}, 128 * kPageSize);
    const uint64_t reqs_before = fs->device().requests();
    fs->fsync(fd);
    EXPECT_GT(fs->device().requests(), reqs_before);
    EXPECT_GT(fs->stats().writebackPages, 0u);
    // Second fsync with nothing dirty is cheap.
    const uint64_t reqs_after = fs->device().requests();
    fs->fsync(fd);
    EXPECT_EQ(fs->stats().writebackPages, 128u);
    EXPECT_LE(fs->device().requests(), reqs_after + 1);
    fs->close(fd);
}

TEST_F(VfsTest, WritebackDaemonDrainsInBackground)
{
    fs->startDaemons();
    const int fd = fs->create("f");
    fs->write(fd, Bytes{0}, 64 * kPageSize);
    machine.charge(100 * kMillisecond);
    EXPECT_GE(fs->stats().writebackPages, 64u)
        << "daemon did not write back dirty pages";
    fs->close(fd);
    fs->stopDaemons();
}

TEST_F(VfsTest, ReadaheadPrefetchesSequentialStreams)
{
    const int fd = fs->create("f");
    fs->write(fd, Bytes{0}, 256 * kPageSize);
    fs->fsync(fd);
    fs->close(fd);
    fs->reclaimPages(FrameCount{256});
    const int fd2 = fs->open("f");
    // Two sequential reads trigger the prefetcher.
    fs->read(fd2, Bytes{0}, kPageSize);
    fs->read(fd2, kPageSize, kPageSize);
    EXPECT_GT(fs->stats().readaheadPages, 0u);
    fs->close(fd2);
}

TEST_F(VfsTest, RandomReadsDoNotPrefetch)
{
    const int fd = fs->create("f");
    fs->write(fd, Bytes{0}, 256 * kPageSize);
    fs->read(fd, 100 * kPageSize, kPageSize);
    fs->read(fd, 3 * kPageSize, kPageSize);
    fs->read(fd, 77 * kPageSize, kPageSize);
    EXPECT_EQ(fs->stats().readaheadPages, 0u);
    fs->close(fd);
}

TEST_F(VfsTest, ReclaimSkipsDirtyButWritesThemBack)
{
    const int fd = fs->create("f");
    fs->write(fd, Bytes{0}, 32 * kPageSize);
    // All pages dirty: reclaim writes back, rotates, and may free
    // only what became clean.
    fs->reclaimPages(FrameCount{8});
    EXPECT_GT(fs->stats().writebackPages, 0u);
    fs->close(fd);
}

TEST_F(VfsTest, FdsAreRecycled)
{
    const int fd = fs->create("f");
    fs->close(fd);
    const int fd2 = fs->open("f");
    EXPECT_EQ(fd, fd2) << "fd slots should be reused";
    fs->close(fd2);
}

TEST_F(VfsTest, SyncAllFlushesEverything)
{
    const int a = fs->create("a");
    const int b = fs->create("b");
    fs->write(a, Bytes{0}, 16 * kPageSize);
    fs->write(b, Bytes{0}, 16 * kPageSize);
    fs->syncAll();
    EXPECT_GE(fs->stats().writebackPages, 32u);
    fs->close(a);
    fs->close(b);
}

TEST_F(VfsTest, ReopenReactivatesKnode)
{
    const int fd = fs->create("f");
    fs->write(fd, Bytes{0}, kPageSize);
    fs->close(fd);
    Knode *knode = fs->knodeOf("f");
    ASSERT_FALSE(knode->inuse);
    const int fd2 = fs->open("f");
    EXPECT_TRUE(knode->inuse);
    fs->close(fd2);
}

/** Data-backed variant verifying byte-level integrity. */
class VfsDataTest : public VfsTest
{
  protected:
    VfsDataTest() : VfsTest(/*data_backed=*/true) {}
};

TEST_F(VfsDataTest, RoundTripsBytes)
{
    const int fd = fs->create("data");
    std::vector<char> out(3 * kPageSize);
    for (size_t i = 0; i < out.size(); ++i)
        out[i] = static_cast<char>((i * 31 + 7) & 0xFF);
    ASSERT_EQ(fs->write(fd, Bytes{0}, Bytes{out.size()}, out.data()), out.size());

    std::vector<char> in(out.size(), 0);
    ASSERT_EQ(fs->read(fd, Bytes{0}, Bytes{in.size()}, in.data()), in.size());
    EXPECT_EQ(std::memcmp(out.data(), in.data(), out.size()), 0);
    fs->close(fd);
}

TEST_F(VfsDataTest, UnalignedOverwrite)
{
    const int fd = fs->create("data");
    std::vector<char> base(2 * kPageSize, 'A');
    fs->write(fd, Bytes{0}, Bytes{base.size()}, base.data());
    // Overwrite a span crossing the page boundary.
    std::vector<char> patch(1000, 'B');
    fs->write(fd, kPageSize - Bytes{500}, Bytes{patch.size()}, patch.data());

    std::vector<char> in(2 * kPageSize, 0);
    fs->read(fd, Bytes{0}, Bytes{in.size()}, in.data());
    EXPECT_EQ(in[kPageSize - 501], 'A');
    EXPECT_EQ(in[kPageSize - 500], 'B');
    EXPECT_EQ(in[kPageSize + 499], 'B');
    EXPECT_EQ(in[kPageSize + 500], 'A');
    fs->close(fd);
}

} // namespace
} // namespace kloc
