/**
 * @file
 * Extended VFS and feature tests: readdir/dir buffers, huge-page
 * app allocations, sys_kloc_memsize allocation diversion, dentry
 * cache eviction, and teardown edge cases.
 */

#include <gtest/gtest.h>

#include "platform/two_tier.hh"
#include "workload/runner.hh"
#include "workload/workload.hh"

namespace kloc {
namespace {

std::unique_ptr<TwoTierPlatform>
makePlatform(StrategyKind kind = StrategyKind::Kloc)
{
    TwoTierPlatform::Config config;
    config.scale = 256;
    auto platform = std::make_unique<TwoTierPlatform>(config);
    platform->applyStrategy(kind);
    return platform;
}

TEST(VfsExtended, ReaddirListsEverythingAndAllocatesDirBuffers)
{
    auto platform = makePlatform();
    System &sys = platform->sys();
    for (int i = 0; i < 150; ++i)
        sys.fs().close(sys.fs().create("file_" + std::to_string(i)));

    const auto names = sys.fs().readdir();
    EXPECT_EQ(names.size(), 150u);
    // 150 entries over 64-entry buffers -> at least 3 DirBuffers,
    // all freed again by the time readdir returns.
    const auto &hist = sys.heap().objLifetimeHist(KobjKind::DirBuffer);
    EXPECT_GE(hist.dist().count(), 3u);
    for (int i = 0; i < 150; ++i)
        sys.fs().unlink("file_" + std::to_string(i));
}

TEST(VfsExtended, ReaddirOnEmptyFs)
{
    auto platform = makePlatform();
    EXPECT_TRUE(platform->sys().fs().readdir().empty());
}

TEST(VfsExtended, HugePageAllocationsAreContiguous)
{
    auto platform = makePlatform();
    System &sys = platform->sys();
    Frame *huge = sys.heap().allocAppPages(9);
    ASSERT_NE(huge, nullptr);
    EXPECT_EQ(huge->pages(), 512u);
    EXPECT_EQ(huge->bytes(), 2 * kMiB);
    EXPECT_EQ(sys.heap().liveAppPages(), 512u);
    // Aligned like a real THP.
    EXPECT_EQ(huge->pfn % 512, 0u);
    sys.heap().freeAppPage(huge);
    EXPECT_EQ(sys.heap().liveAppPages(), 0u);
}

TEST(VfsExtended, HugePageArenaWorkloadRuns)
{
    auto platform = makePlatform();
    System &sys = platform->sys();
    sys.fs().startDaemons();
    WorkloadConfig config;
    config.scale = 1024;
    config.operations = 1500;
    config.hugePages = true;
    auto workload = makeWorkload("redis", config);
    const WorkloadResult result = runMeasured(sys, *workload);
    EXPECT_GT(result.throughput(), 0.0);
    workload->teardown(sys);
    EXPECT_EQ(sys.heap().liveAppPages(), 0u);
}

TEST(VfsExtended, MemsizeCapDivertsKernelAllocations)
{
    auto platform = makePlatform();
    System &sys = platform->sys();
    // Cap KLOC kernel residency on the fast tier to ~16 pages.
    sys.kloc().setMemLimit(platform->fastTier(), 16 * kPageSize);

    const int fd = sys.fs().create("f");
    sys.fs().write(fd, Bytes{0}, 256 * kPageSize);
    sys.fs().close(fd);

    const Tier &fast = sys.tiers().tier(platform->fastTier());
    Bytes kernel_bytes{};
    for (unsigned c = 0; c < kNumObjClasses; ++c) {
        const auto cls = static_cast<ObjClass>(c);
        if (isKernelClass(cls))
            kernel_bytes += fast.residentPages(cls) * kPageSize;
    }
    // Some slack for the pre-cap allocations and pinned KlocMeta.
    EXPECT_LT(kernel_bytes, 64 * kPageSize)
        << "sys_kloc_memsize failed to divert kernel allocations";
    sys.fs().unlink("f");
}

TEST(VfsExtended, DentryCacheEvictsClosedFilesOnly)
{
    TwoTierPlatform::Config config;
    config.scale = 256;
    config.system.fs.dentryCacheCap = 8;
    TwoTierPlatform platform(config);
    platform.applyStrategy(StrategyKind::Kloc);
    System &sys = platform.sys();
    std::vector<int> fds;
    for (int i = 0; i < 20; ++i) {
        const int fd = sys.fs().create("d" + std::to_string(i));
        if (i < 10)
            sys.fs().close(fd);
        else
            fds.push_back(fd);
    }
    // Open files survive; re-open of an evicted name still works
    // (dcache miss path re-reads the directory entry).
    const int fd = sys.fs().open("d0");
    EXPECT_GE(fd, 0);
    sys.fs().close(fd);
    for (const int open_fd : fds)
        sys.fs().close(open_fd);
}

TEST(VfsExtended, DestroyWithDirtyPagesViaTeardown)
{
    auto platform = makePlatform();
    System &sys = platform->sys();
    const int fd = sys.fs().create("dirty_file");
    sys.fs().write(fd, Bytes{0}, 64 * kPageSize);
    sys.fs().close(fd);
    // Unlink with dirty pages pending: pages are deallocated, not
    // written back (the file is gone).
    EXPECT_TRUE(sys.fs().unlink("dirty_file"));
    EXPECT_EQ(sys.fs().cachedPages(), 0u);
}

TEST(VfsExtended, ZeroLengthIo)
{
    auto platform = makePlatform();
    System &sys = platform->sys();
    const int fd = sys.fs().create("f");
    EXPECT_EQ(sys.fs().write(fd, Bytes{0}, Bytes{0}), 0u);
    EXPECT_EQ(sys.fs().read(fd, Bytes{0}, Bytes{0}), 0u);
    EXPECT_EQ(sys.fs().fileSize("f"), 0u);
    sys.fs().close(fd);
}

TEST(VfsExtended, SparseWriteThenReadHole)
{
    auto platform = makePlatform();
    System &sys = platform->sys();
    const int fd = sys.fs().create("sparse");
    // Write one page far into the file.
    sys.fs().write(fd, 100 * kPageSize, kPageSize);
    EXPECT_EQ(sys.fs().fileSize("sparse"), 101 * kPageSize);
    // Reading the hole materialises pages through the miss path.
    const Bytes got = sys.fs().read(fd, Bytes{0}, 4 * kPageSize);
    EXPECT_EQ(got, 4 * kPageSize);
    sys.fs().close(fd);
}

TEST(VfsExtended, ManySmallFilesChurn)
{
    auto platform = makePlatform();
    System &sys = platform->sys();
    sys.fs().startDaemons();
    // create/write/close/unlink churn like a mail-server workload.
    for (int round = 0; round < 10; ++round) {
        for (int i = 0; i < 30; ++i) {
            const std::string name =
                "mail_" + std::to_string(round) + "_" +
                std::to_string(i);
            const int fd = sys.fs().create(name);
            ASSERT_GE(fd, 0);
            sys.fs().write(fd, Bytes{0}, 2 * kPageSize);
            sys.fs().close(fd);
        }
        sys.machine().charge(5 * kMillisecond);
        for (int i = 0; i < 30; ++i) {
            const std::string name =
                "mail_" + std::to_string(round) + "_" +
                std::to_string(i);
            EXPECT_TRUE(sys.fs().unlink(name));
        }
    }
    EXPECT_EQ(sys.fs().liveInodes(), 0u);
    EXPECT_EQ(sys.kloc().knodeCount(), 0u);
    EXPECT_EQ(sys.fs().cachedPages(), 0u);
}

} // namespace
} // namespace kloc
