/**
 * @file
 * Property test: the simulated filesystem against a trivial
 * in-memory reference model, under thousands of random operations in
 * data-backed mode. Catches offset arithmetic, cache coherence,
 * truncation-by-unlink, and lifecycle bugs that unit tests miss.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "base/rng.hh"
#include "platform/two_tier.hh"

namespace kloc {
namespace {

/** Reference model: name -> byte vector. */
struct ModelFile
{
    std::vector<char> bytes;
    int fd = -1;  ///< open descriptor in the simulated FS, if any
};

class VfsPropertyTest : public ::testing::TestWithParam<int>
{};

TEST_P(VfsPropertyTest, MatchesReferenceModel)
{
    TwoTierPlatform::Config config;
    config.scale = 256;
    config.system.fs.dataBacked = true;
    TwoTierPlatform platform(config);
    platform.applyStrategy(StrategyKind::Kloc);
    System &sys = platform.sys();
    sys.fs().startDaemons();
    FileSystem &fs = sys.fs();

    Rng rng(static_cast<uint64_t>(GetParam()));
    std::map<std::string, ModelFile> model;
    uint64_t name_counter = 0;
    constexpr Bytes kMaxFile = 24 * kPageSize;

    auto random_file = [&]() -> std::pair<const std::string,
                                          ModelFile> * {
        if (model.empty())
            return nullptr;
        auto it = model.begin();
        std::advance(it, static_cast<long>(
                             rng.nextBounded(model.size())));
        return &*it;
    };

    for (int step = 0; step < 2500; ++step) {
        const double action = rng.nextDouble();
        if (action < 0.15) {
            // create
            const std::string name =
                "p" + std::to_string(name_counter++);
            const int fd = fs.create(name);
            ASSERT_GE(fd, 0);
            model[name] = ModelFile{{}, fd};
        } else if (action < 0.45) {
            // write somewhere random in a random open file
            auto *entry = random_file();
            if (!entry || entry->second.fd < 0)
                continue;
            const Bytes offset{rng.nextBounded(kMaxFile / 2)};
            const Bytes length{1 + rng.nextBounded(3 * kPageSize)};
            std::vector<char> data(length);
            for (auto &b : data)
                b = static_cast<char>(rng.nextBounded(256));
            ASSERT_EQ(fs.write(entry->second.fd, offset, length,
                               data.data()),
                      length);
            auto &bytes = entry->second.bytes;
            if (bytes.size() < offset + length)
                bytes.resize(offset + length, 0);
            std::memcpy(bytes.data() + offset, data.data(), length);
        } else if (action < 0.75) {
            // read and compare
            auto *entry = random_file();
            if (!entry || entry->second.fd < 0)
                continue;
            const auto &bytes = entry->second.bytes;
            ASSERT_EQ(fs.fileSize(entry->first), bytes.size());
            if (bytes.empty())
                continue;
            const Bytes offset{rng.nextBounded(bytes.size())};
            const Bytes want{
                std::min<uint64_t>(1 + rng.nextBounded(2 * kPageSize),
                                   bytes.size() - offset)};
            std::vector<char> got(want, 0);
            ASSERT_EQ(fs.read(entry->second.fd, offset, want,
                              got.data()),
                      want);
            ASSERT_EQ(std::memcmp(got.data(), bytes.data() + offset,
                                  want),
                      0)
                << "data mismatch in " << entry->first << " at "
                << offset;
        } else if (action < 0.83) {
            // fsync
            auto *entry = random_file();
            if (entry && entry->second.fd >= 0)
                fs.fsync(entry->second.fd);
        } else if (action < 0.9) {
            // close + reopen (knode inactive -> active round trip)
            auto *entry = random_file();
            if (!entry || entry->second.fd < 0)
                continue;
            fs.close(entry->second.fd);
            entry->second.fd = fs.open(entry->first);
            ASSERT_GE(entry->second.fd, 0);
        } else if (action < 0.97) {
            // close + unlink
            auto *entry = random_file();
            if (!entry)
                continue;
            if (entry->second.fd >= 0)
                fs.close(entry->second.fd);
            ASSERT_TRUE(fs.unlink(entry->first));
            model.erase(entry->first);
        } else {
            // let daemons run
            sys.machine().charge(10 * kMillisecond);
        }
    }

    // Full verification sweep.
    for (auto &[name, file] : model) {
        ASSERT_EQ(fs.fileSize(name), file.bytes.size());
        if (file.fd < 0)
            file.fd = fs.open(name);
        if (file.bytes.empty())
            continue;
        std::vector<char> got(file.bytes.size(), 0);
        ASSERT_EQ(fs.read(file.fd, Bytes{0}, Bytes{got.size()}, got.data()),
                  got.size());
        ASSERT_EQ(std::memcmp(got.data(), file.bytes.data(),
                              got.size()),
                  0)
            << "final sweep mismatch in " << name;
        fs.close(file.fd);
        file.fd = -1;
    }
    // readdir agrees with the model's name set.
    auto names = fs.readdir();
    EXPECT_EQ(names.size(), model.size());
    for (const auto &name : names)
        EXPECT_TRUE(model.count(name)) << "phantom file " << name;
}

INSTANTIATE_TEST_SUITE_P(Seeds, VfsPropertyTest,
                         ::testing::Values(101, 202, 303, 404));

} // namespace
} // namespace kloc
