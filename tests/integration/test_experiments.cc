/**
 * @file
 * Integration tests asserting the *shapes* the paper's evaluation
 * reports, at reduced scale so they run inside the test suite:
 *
 *  - Fig. 2: kernel objects dominate footprints and references; slab
 *    objects are shorter-lived than cache pages, which are shorter-
 *    lived than app pages.
 *  - Fig. 4: KLOCs beats AllSlow and Nimble; AllFast is the bound.
 *  - Fig. 5b: KLOCs allocates less in slow memory than Naive and its
 *    migrations are demotion-dominated.
 *  - Fig. 5a protocol: KLOCs on the Optane platform beats static
 *    placement after the task escapes the interferer.
 *  - Table 6: KLOC metadata stays below 1% of memory.
 */

#include <gtest/gtest.h>

#include "platform/optane.hh"
#include "platform/two_tier.hh"
#include "workload/runner.hh"
#include "workload/workload.hh"

namespace kloc {
namespace {

WorkloadConfig
midConfig()
{
    WorkloadConfig config;
    config.scale = 256;
    config.operations = 15000;
    return config;
}

TwoTierPlatform::Config
midPlatform()
{
    TwoTierPlatform::Config config;
    config.scale = 256;
    return config;
}

double
runStrategy(const std::string &workload_name, StrategyKind kind,
            MigrationStats *migration = nullptr,
            uint64_t *slow_cache_allocs = nullptr)
{
    TwoTierPlatform::Config platform_config = midPlatform();
    if (kind == StrategyKind::AllFast)
        platform_config.fastCapacity += platform_config.slowCapacity;
    TwoTierPlatform platform(platform_config);
    System &sys = platform.sys();
    platform.applyStrategy(kind);
    sys.fs().startDaemons();
    auto workload = makeWorkload(workload_name, midConfig());
    const WorkloadResult result = runMeasured(sys, *workload);
    if (migration)
        *migration = sys.migrator().stats();
    if (slow_cache_allocs) {
        *slow_cache_allocs =
            sys.tiers().tier(platform.slowTier())
                .cumulativeAllocPages(ObjClass::PageCache);
    }
    workload->teardown(sys);
    return result.throughput();
}

TEST(Fig2Shape, KernelObjectsDominateFootprint)
{
    TwoTierPlatform platform(midPlatform());
    System &sys = platform.sys();
    platform.applyStrategy(StrategyKind::Naive);
    sys.fs().startDaemons();
    auto workload = makeWorkload("rocksdb", midConfig());
    runMeasured(sys, *workload);

    uint64_t kernel_pages = 0;
    for (unsigned c = 1; c < kNumObjClasses; ++c) {
        kernel_pages +=
            sys.tiers().cumulativeAllocPages(static_cast<ObjClass>(c));
    }
    const uint64_t app_pages = sys.heap().cumulativeAppPages();
    EXPECT_GT(kernel_pages, app_pages)
        << "I/O-intensive workloads allocate more kernel pages than "
           "app pages (Fig. 2a)";
    workload->teardown(sys);
}

TEST(Fig2Shape, KernelReferencesAreMajor)
{
    TwoTierPlatform platform(midPlatform());
    System &sys = platform.sys();
    platform.applyStrategy(StrategyKind::Naive);
    sys.fs().startDaemons();
    auto workload = makeWorkload("filebench", midConfig());
    runMeasured(sys, *workload);
    const double kernel_share =
        static_cast<double>(sys.machine().kernelRefs()) /
        static_cast<double>(sys.machine().kernelRefs() +
                            sys.machine().userRefs());
    EXPECT_GT(kernel_share, 0.5)
        << "filebench spends most references in the kernel (Fig. 2c)";
    workload->teardown(sys);
}

TEST(Fig2Shape, LifetimeOrderingSlabCacheApp)
{
    TwoTierPlatform platform(midPlatform());
    System &sys = platform.sys();
    platform.applyStrategy(StrategyKind::Naive);
    sys.fs().startDaemons();
    auto workload = makeWorkload("redis", midConfig());
    runMeasured(sys, *workload);
    workload->teardown(sys);  // frees the arena -> app lifetimes

    const double skb_ms =
        sys.heap().objLifetimeHist(KobjKind::SkbuffHead).dist().mean();
    const double cache_ms =
        sys.heap()
            .objLifetimeHist(KobjKind::PageCachePage)
            .dist()
            .mean();
    const double app_ms =
        sys.tiers().lifetimeHist(ObjClass::App).dist().mean();
    ASSERT_GT(skb_ms, 0.0);
    ASSERT_GT(cache_ms, 0.0);
    ASSERT_GT(app_ms, 0.0);
    EXPECT_LT(skb_ms, cache_ms)
        << "socket buffers must be shorter-lived than cache pages";
    EXPECT_LT(cache_ms, app_ms)
        << "cache pages must be shorter-lived than app pages (Fig. 2d)";
}

TEST(Fig4Shape, KlocsBeatsBaselinesOnRocksDb)
{
    const double all_slow =
        runStrategy("rocksdb", StrategyKind::AllSlow);
    const double nimble = runStrategy("rocksdb", StrategyKind::Nimble);
    const double klocs = runStrategy("rocksdb", StrategyKind::Kloc);
    const double all_fast =
        runStrategy("rocksdb", StrategyKind::AllFast);
    EXPECT_GT(klocs, all_slow * 1.2)
        << "KLOCs must clearly beat the all-slow bound";
    EXPECT_GT(klocs, nimble)
        << "KLOCs must beat application-only tiering (Nimble)";
    EXPECT_GT(all_fast, klocs) << "AllFast is the upper bound";
}

TEST(Fig5bShape, KlocsAvoidsSlowAllocationsAndDemotes)
{
    MigrationStats naive_migration, klocs_migration;
    uint64_t naive_slow = 0, klocs_slow = 0;
    runStrategy("rocksdb", StrategyKind::Naive, &naive_migration,
                &naive_slow);
    runStrategy("rocksdb", StrategyKind::Kloc, &klocs_migration,
                &klocs_slow);
    EXPECT_LT(klocs_slow, naive_slow)
        << "KLOCs allocates page-cache pages in slow memory less often";
    EXPECT_EQ(naive_migration.migratedPages, 0u);
    ASSERT_GT(klocs_migration.migratedPages, 0u);
    const double demote_share =
        static_cast<double>(klocs_migration.demotedPages) /
        static_cast<double>(klocs_migration.migratedPages);
    EXPECT_GT(demote_share, 0.7)
        << "paper: ~88% of KLOC migrations are demotions";
}

TEST(Fig5aShape, KlocsFollowsTheTaskAcrossSockets)
{
    auto run_optane = [](AutoNumaPolicy::Mode mode) {
        OptanePlatform::Config config;
        config.scale = 256;
        OptanePlatform platform(config);
        System &sys = platform.sys();
        platform.setInterference(true);
        platform.applyPolicy(mode);
        sys.fs().startDaemons();
        WorkloadConfig wl_config = midConfig();
        platform.moveTaskToSocket(0);
        wl_config.cpus = platform.taskCpus();
        auto workload = makeWorkload("filebench", wl_config);
        workload->setup(sys);
        sys.fs().syncAll();
        platform.moveTaskToSocket(1);
        workload->setCpus(platform.taskCpus());
        sys.machine().charge(kQuiesceWindow);
        workload->run(sys);  // warm-up / convergence window
        const WorkloadResult result = workload->run(sys);
        workload->teardown(sys);
        return result.throughput();
    };
    const double remote = run_optane(AutoNumaPolicy::Mode::Static);
    const double klocs = run_optane(AutoNumaPolicy::Mode::Kloc);
    EXPECT_GT(klocs, remote * 1.1)
        << "KLOCs must pull kernel objects to the task's socket";
}

TEST(Table6Shape, MetadataBelowOnePercent)
{
    TwoTierPlatform platform(midPlatform());
    System &sys = platform.sys();
    platform.applyStrategy(StrategyKind::Kloc);
    sys.fs().startDaemons();
    auto workload = makeWorkload("rocksdb", midConfig());
    runMeasured(sys, *workload);
    const Bytes total_memory =
        sys.tiers().tier(platform.fastTier()).spec().capacity +
        sys.tiers().tier(platform.slowTier()).spec().capacity;
    EXPECT_LT(sys.kloc().peakMetadataBytes(), total_memory / 100)
        << "KLOC metadata must stay below 1% of memory (Table 6)";
    EXPECT_GT(sys.kloc().peakMetadataBytes(), 0u);
    workload->teardown(sys);
}

TEST(AblationShape, PerCpuListsCutTreeAccesses)
{
    auto drive = [](bool lists) {
        TwoTierPlatform platform(midPlatform());
        System &sys = platform.sys();
        platform.applyStrategy(StrategyKind::Kloc);
        sys.kloc().setUsePerCpuLists(lists);
        std::vector<Knode *> knodes;
        for (unsigned i = 0; i < 64; ++i)
            knodes.push_back(sys.kloc().mapKnode(5000 + i));
        ZipfianGenerator zipf(64, 0.99, 3);
        const uint64_t before = sys.kloc().treeNodesVisited();
        for (unsigned i = 0; i < 20000; ++i) {
            sys.machine().setCurrentCpu(i % 16);
            sys.kloc().findKnode(5000 + zipf.next());
        }
        const uint64_t visits = sys.kloc().treeNodesVisited() - before;
        for (Knode *knode : knodes)
            sys.kloc().unmapKnode(knode);
        return visits;
    };
    const uint64_t with_lists = drive(true);
    const uint64_t without = drive(false);
    EXPECT_LT(with_lists, without / 2)
        << "per-CPU lists should cut rbtree accesses roughly in half "
           "(paper: 54%)";
}

} // namespace
} // namespace kloc
