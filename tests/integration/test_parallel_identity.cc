/**
 * @file
 * Parallel-vs-serial byte-identity: the run executor must be
 * invisible in the output. A bench-style sweep executed on RunPool
 * with 1, 4, and 8 workers has to produce results that are
 * byte-identical to a plain serial loop — both the formatted
 * kloc-bench-v1 metric rows (doubles printed with the %.17g format
 * report.hh uses) and the serialized event traces.
 *
 * This is the enforcement point for the determinism contract in
 * bench/parallel.hh and docs/PERF.md: completion order, worker count
 * and scheduling jitter must never reach the results.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "base/run_pool.hh"
#include "platform/two_tier.hh"
#include "workload/runner.hh"
#include "workload/workload.hh"

namespace kloc {
namespace {

/** What one grid cell contributes to the artifacts. */
struct CellOutput
{
    std::string rows;   ///< formatted metric rows, report.hh style
    std::string trace;  ///< full serialized event trace
};

struct Cell
{
    std::string workload;
    StrategyKind kind;
};

/** Small but non-trivial grid: two workloads x two strategies. */
std::vector<Cell>
identityGrid()
{
    return {
        {"rocksdb", StrategyKind::Naive},
        {"rocksdb", StrategyKind::Kloc},
        {"redis", StrategyKind::Naive},
        {"redis", StrategyKind::Kloc},
    };
}

/**
 * One shared-nothing measured run with tracing on, like the bench
 * binaries do per configuration, capturing both the metrics and the
 * trace bytes.
 */
CellOutput
runCell(const Cell &cell)
{
    TwoTierPlatform::Config platform_config;
    platform_config.scale = 256;
    TwoTierPlatform platform(platform_config);
    System &sys = platform.sys();
    sys.machine().tracer().setEnabled(true);
    platform.applyStrategy(cell.kind);
    sys.fs().startDaemons();

    WorkloadConfig workload_config;
    workload_config.scale = 256;
    workload_config.operations = 2000;
    auto workload = makeWorkload(cell.workload, workload_config);
    const WorkloadResult result = runMeasured(sys, *workload);
    workload->teardown(sys);

    CellOutput out;
    char row[160];
    const auto add = [&](const char *name, double value) {
        std::snprintf(row, sizeof(row), "%s.%s.%s=%.17g\n",
                      cell.workload.c_str(), strategyName(cell.kind),
                      name, value);
        out.rows += row;
    };
    add("ops_per_s", result.throughput());
    add("migrated_pages",
        static_cast<double>(sys.migrator().stats().migratedPages));
    add("demoted_pages",
        static_cast<double>(sys.migrator().stats().demotedPages));
    add("kernel_refs", static_cast<double>(sys.machine().kernelRefs()));
    out.trace = sys.machine().tracer().serialize();
    return out;
}

/** Concatenated artifacts of a sweep at @p workers pool workers. */
CellOutput
sweepArtifacts(unsigned workers)
{
    const std::vector<Cell> grid = identityGrid();
    RunPool pool(workers);
    const std::vector<CellOutput> outputs = runIndexed<CellOutput>(
        pool, grid.size(), [&grid](size_t i) { return runCell(grid[i]); });
    CellOutput merged;
    for (const CellOutput &out : outputs) {
        merged.rows += out.rows;
        merged.trace += out.trace;
    }
    return merged;
}

class ParallelIdentity : public ::testing::TestWithParam<unsigned>
{};

TEST_P(ParallelIdentity, PooledSweepMatchesSerialByteForByte)
{
    // Serial reference: a plain loop on this thread, no pool at all.
    const std::vector<Cell> grid = identityGrid();
    CellOutput serial;
    for (const Cell &cell : grid) {
        const CellOutput out = runCell(cell);
        serial.rows += out.rows;
        serial.trace += out.trace;
    }
    ASSERT_FALSE(serial.rows.empty());
    ASSERT_FALSE(serial.trace.empty());

    const CellOutput pooled = sweepArtifacts(GetParam());
    // Metric rows first: small, so a mismatch prints usefully.
    EXPECT_EQ(pooled.rows, serial.rows);
    // Traces compare as one blob; report only the divergence point.
    ASSERT_EQ(pooled.trace.size(), serial.trace.size());
    if (pooled.trace != serial.trace) {
        size_t at = 0;
        while (at < serial.trace.size() &&
               pooled.trace[at] == serial.trace[at])
            ++at;
        FAIL() << "traces diverge at byte " << at << " of "
               << serial.trace.size();
    }
}

INSTANTIATE_TEST_SUITE_P(Workers, ParallelIdentity,
                         ::testing::Values(1u, 4u, 8u));

/**
 * Two pooled sweeps at different worker counts must also match each
 * other — catches nondeterminism that happens to cancel against the
 * serial path (e.g. both pool runs sharing a stale cache).
 */
TEST(ParallelIdentityCross, WorkerCountsAgree)
{
    const CellOutput four = sweepArtifacts(4);
    const CellOutput eight = sweepArtifacts(8);
    EXPECT_EQ(four.rows, eight.rows);
    EXPECT_EQ(four.trace == eight.trace, true)
        << "trace bytes differ between 4 and 8 workers";
}

} // namespace
} // namespace kloc
