/**
 * @file
 * Stress and failure-injection tests: daemon storms (all periodic
 * engines at once, checking the journal's re-entrancy guard and LRU
 * bookkeeping under churn), memory exhaustion on the network rx
 * path, and API misuse death tests.
 */

#include <gtest/gtest.h>

#include "platform/two_tier.hh"
#include "workload/runner.hh"
#include "workload/workload.hh"

namespace kloc {
namespace {

TEST(Stress, DaemonStormStaysConsistent)
{
    // Aggressive periods: every daemon fires constantly while a
    // workload churns files; exercises nested event dispatch.
    TwoTierPlatform::Config config;
    config.scale = 512;
    config.system.fs.journalCommitPeriod = kMillisecond;
    config.system.fs.writebackPeriod = kMillisecond;
    TwoTierPlatform platform(config);
    System &sys = platform.sys();
    TieringStrategy::Config strat_config;
    strat_config.scanPeriod = 2 * kMillisecond;
    strat_config.klocDaemonPeriod = kMillisecond;
    platform.applyStrategy(StrategyKind::Kloc, strat_config);
    sys.fs().startDaemons();

    WorkloadConfig wl_config;
    wl_config.scale = 1024;
    wl_config.operations = 3000;
    auto workload = makeWorkload("varmail", wl_config);
    const WorkloadResult result = runMeasured(sys, *workload);
    EXPECT_GT(result.operations, 0u);
    workload->teardown(sys);

    // Everything drained and balanced.
    EXPECT_EQ(sys.fs().liveInodes(), 0u);
    EXPECT_EQ(sys.kloc().knodeCount(), 0u);
    EXPECT_EQ(sys.heap().liveAppPages(), 0u);
}

TEST(Stress, RxPathSurvivesMemoryExhaustion)
{
    // Tiny memory: skb allocation will fail under a flood.
    TwoTierPlatform::Config config;
    config.scale = 1;
    config.fastCapacity = 2 * kMiB;
    config.slowCapacity = 4 * kMiB;
    TwoTierPlatform platform(config);
    System &sys = platform.sys();
    platform.applyStrategy(StrategyKind::Naive);

    const int sd = sys.net().socket();
    // Flood far beyond memory; drops must be counted, not crashed.
    for (int burst = 0; burst < 40; ++burst)
        sys.net().deliver(sd, 64 * kPageSize);
    EXPECT_GT(sys.net().stats().rxDrops, 0u);
    // Draining recovers service.
    sys.net().recv(sd, Bytes{~0ULL});
    const uint64_t delivered_before =
        sys.net().stats().packetsDelivered;
    sys.net().deliver(sd, kPageSize);
    EXPECT_GT(sys.net().stats().packetsDelivered, delivered_before);
    sys.net().closeSocket(sd);
}

TEST(Stress, FsWriteUnderTotalExhaustionBypassesCache)
{
    TwoTierPlatform::Config config;
    config.scale = 1;
    config.fastCapacity = 2 * kMiB;
    config.slowCapacity = 4 * kMiB;
    TwoTierPlatform platform(config);
    System &sys = platform.sys();
    platform.applyStrategy(StrategyKind::Naive);
    const int fd = sys.fs().create("big");
    // Write 4x the total memory; the FS must keep going through
    // reclaim + cache bypass.
    const Bytes total = 24 * kMiB;
    Bytes written{};
    for (Bytes off{}; off < total; off += 64 * kPageSize)
        written += sys.fs().write(fd, off, 64 * kPageSize);
    EXPECT_EQ(written, total);
    EXPECT_GT(sys.fs().stats().reclaimedPages +
                  sys.fs().stats().cacheBypasses,
              0u);
    sys.fs().close(fd);
}

TEST(Stress, EventQueueClearDropsPending)
{
    EventQueue events;
    int fired = 0;
    for (int i = 0; i < 100; ++i)
        events.schedule(Tick{i}, [&] { ++fired; });
    events.clear();
    EXPECT_TRUE(events.empty());
    EXPECT_EQ(events.runDue(Tick{1000}), 0u);
    EXPECT_EQ(fired, 0);
}

TEST(StressDeath, DoubleCloseIsTolerated)
{
    TwoTierPlatform::Config config;
    config.scale = 1024;
    TwoTierPlatform platform(config);
    System &sys = platform.sys();
    platform.applyStrategy(StrategyKind::Naive);
    const int fd = sys.fs().create("f");
    sys.fs().close(fd);
    sys.fs().close(fd);  // stale fd: must be a no-op, not a crash
    SUCCEED();
}

TEST(StressDeath, FreeingUntrackedObjectDies)
{
    TwoTierPlatform::Config config;
    config.scale = 1024;
    TwoTierPlatform platform(config);
    System &sys = platform.sys();
    platform.applyStrategy(StrategyKind::Kloc);
    EXPECT_DEATH(
        {
            KernelObject obj(KobjKind::Inode);
            sys.kloc().removeObject(&obj);
        },
        "untracked");
}

TEST(StressDeath, UnmapWithLiveObjectsDies)
{
    TwoTierPlatform::Config config;
    config.scale = 1024;
    TwoTierPlatform platform(config);
    System &sys = platform.sys();
    platform.applyStrategy(StrategyKind::Kloc);
    EXPECT_DEATH(
        {
            Knode *knode = sys.kloc().mapKnode(424242);
            auto obj = std::make_unique<KernelObject>(
                KobjKind::PageCachePage);
            sys.heap().allocBacking(*obj, true, knode->id);
            sys.kloc().addObject(knode, obj.get());
            sys.kloc().unmapKnode(knode);
        },
        "live objects");
}

TEST(Stress, RepeatedStrategySwitching)
{
    // Re-applying strategies mid-life must not corrupt state.
    TwoTierPlatform::Config config;
    config.scale = 512;
    TwoTierPlatform platform(config);
    System &sys = platform.sys();
    sys.fs().startDaemons();
    WorkloadConfig wl_config;
    wl_config.scale = 1024;
    wl_config.operations = 500;
    for (const StrategyKind kind :
         {StrategyKind::Naive, StrategyKind::Kloc, StrategyKind::Nimble,
          StrategyKind::Kloc, StrategyKind::NimblePlusPlus}) {
        platform.applyStrategy(kind);
        auto workload = makeWorkload("filebench", wl_config);
        workload->setup(sys);
        workload->run(sys);
        workload->teardown(sys);
    }
    EXPECT_EQ(sys.fs().liveInodes(), 0u);
    EXPECT_EQ(sys.heap().liveAppPages(), 0u);
}

} // namespace
} // namespace kloc
