#include "trace/trace.hh"

namespace kloc {

void
check(TraceEventType type)
{
    switch (type) {
      case TraceEventType::FrameAlloc:
        break;
      default:
        break;
    }
}

} // namespace kloc
