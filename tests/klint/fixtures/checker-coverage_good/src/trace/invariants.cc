#include "trace/trace.hh"

namespace kloc {

void
check(TraceEventType type)
{
    switch (type) {
      case TraceEventType::FrameAlloc:
        break;
      case TraceEventType::FrameFree:
        break;
      case TraceEventType::NumTypes:
        break;
    }
}

} // namespace kloc
