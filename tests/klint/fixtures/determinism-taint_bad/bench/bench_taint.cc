#include <unordered_map>

// Seeded violation: a benchmark metric that keeps whichever map
// entry the hash order visits last, then reports it.

struct JsonReport {
    void add(const char *name, double value) {
        (void)name;
        (void)value;
    }
};

int main() {
    std::unordered_map<int, long> counts;
    counts[1] = 10;
    long peak = 0;
    for (const auto &kv : counts)
        peak = kv.second;
    JsonReport report;
    report.add("peak_count", static_cast<double>(peak));
    return 0;
}
