#include <unordered_map>

// Seeded violations: values derived from unordered-container
// iteration order flowing into a policy decision (the function's
// return value) and into trace emission, with no sortedSnapshot().

enum class TraceEventType { VictimPick };

struct Tracer {
    void emit(TraceEventType type, long value) {
        (void)type;
        (void)value;
    }
};

struct VictimPolicy {
    long pickVictim() {
        long victim = -1;
        for (const auto &kv : _heat) {
            if (victim < 0)
                victim = kv.first;
        }
        return victim;
    }

    void tracePick() {
        long last = 0;
        for (const auto &kv : _heat)
            last = kv.first;
        _tracer.emit(TraceEventType::VictimPick, last);
    }

    std::unordered_map<long, long> _heat;
    Tracer _tracer;
};
