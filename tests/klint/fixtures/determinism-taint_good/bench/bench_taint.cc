#include <unordered_map>

// Clean form: the reported metric is an order-independent sum over
// the map, so hash iteration order cannot change the output.

struct JsonReport {
    void add(const char *name, double value) {
        (void)name;
        (void)value;
    }
};

int main() {
    std::unordered_map<int, long> counts;
    counts[1] = 10;
    long sum = 0;
    for (const auto &kv : counts)
        sum += kv.second;
    JsonReport report;
    report.add("total_count", static_cast<double>(sum));
    return 0;
}
