#include <unordered_map>

// Clean forms: decisions read the container through sortedSnapshot(),
// and raw-order loops only feed commutative reductions, whose result
// does not depend on visit order.

struct VictimPolicy {
    long pickVictim() {
        long victim = -1;
        for (const auto &kv : sortedSnapshot(_heat)) {
            if (victim < 0)
                victim = kv.first;
        }
        return victim;
    }

    long totalHeat() {
        long total = 0;
        for (const auto &kv : _heat)
            total += kv.second;
        return total;
    }

    std::unordered_map<long, long> _heat;
};
