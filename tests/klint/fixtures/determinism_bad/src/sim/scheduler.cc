// Fixture: iterates an unordered container and calls libc rand().
#include <unordered_set>

namespace kloc {

class Scheduler
{
  public:
    int drain();

  private:
    std::unordered_set<int> _pending;
};

int
Scheduler::drain()
{
    int sum = 0;
    for (int id : _pending)
        sum += id;
    sum += rand();
    return sum;
}

} // namespace kloc
