// Fixture: same loop through sortedSnapshot(); no libc randomness.
#include <unordered_set>

namespace kloc {

class Scheduler
{
  public:
    int drain();

  private:
    std::unordered_set<int> _pending;
};

int
Scheduler::drain()
{
    int sum = 0;
    for (int id : sortedSnapshot(_pending))
        sum += id;
    return sum;
}

} // namespace kloc
