#ifndef KLOC_FS_DEVICE_HH
#define KLOC_FS_DEVICE_HH

#include "fault/fault.hh"

namespace kloc {

inline bool
consult(bool (*should_fire)(FaultSite))
{
    return should_fire(FaultSite::DeviceRead);
}

} // namespace kloc

#endif // KLOC_FS_DEVICE_HH
