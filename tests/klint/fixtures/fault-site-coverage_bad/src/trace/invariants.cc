#include "fault/fault.hh"

namespace kloc {

void
check(FaultSite site)
{
    switch (site) {
      case FaultSite::DeviceRead:
        break;
      default:
        break;
    }
}

} // namespace kloc
