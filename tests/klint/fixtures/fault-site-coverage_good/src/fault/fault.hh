#ifndef KLOC_FAULT_FAULT_HH
#define KLOC_FAULT_FAULT_HH

namespace kloc {

enum class FaultSite : unsigned char {
    DeviceRead = 0,
    DeviceWrite,
    NumSites
};

} // namespace kloc

#endif // KLOC_FAULT_FAULT_HH
