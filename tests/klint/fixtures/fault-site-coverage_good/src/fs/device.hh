#ifndef KLOC_FS_DEVICE_HH
#define KLOC_FS_DEVICE_HH

#include "fault/fault.hh"

namespace kloc {

// Indirect consults count: the site flows through a variable into
// the shouldFire call, mirroring the real device submit path.
inline bool
consult(bool (*should_fire)(FaultSite), bool write)
{
    const FaultSite site =
        write ? FaultSite::DeviceWrite : FaultSite::DeviceRead;
    return should_fire(site);
}

} // namespace kloc

#endif // KLOC_FS_DEVICE_HH
