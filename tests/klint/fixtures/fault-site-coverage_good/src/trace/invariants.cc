#include "fault/fault.hh"

namespace kloc {

void
check(FaultSite site)
{
    switch (site) {
      case FaultSite::DeviceRead:
        break;
      case FaultSite::DeviceWrite:
        break;
      default:
        break;
    }
}

} // namespace kloc
