#include "mem/hot.hh"

namespace kloc {

// Per-event heap allocation inside a trace-emitting hot path: every
// frame alloc news a tracking node. The rule must flag both the raw
// new and the make_unique.
void
Engine::onAllocated(Frame *frame)
{
    auto *node = new TrackNode(frame);
    _nodes.push_back(node);
    _tracer.emit(TraceEventType::FrameAlloc, frame->tier, frame->pfn);
}

void
Engine::onFreed(Frame *frame)
{
    if (frame->tracked) {
        _tracer.emit(TraceEventType::FrameFree, frame->tier, frame->pfn);
        _log = std::make_unique<FreeRecord>(frame);
    }
}

} // namespace kloc
