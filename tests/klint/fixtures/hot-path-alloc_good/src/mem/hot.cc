#include "mem/hot.hh"

namespace kloc {

// The hot path reuses scratch storage; no allocation near the emit.
void
Engine::onAllocated(Frame *frame)
{
    _scratch.push_back(frame);
    _tracer.emit(TraceEventType::FrameAlloc, frame->tier, frame->pfn);
}

// Setup-time allocation in a function that never emits is fine.
void
Engine::setup()
{
    _arena = std::make_unique<Arena>();
    _nodes = new TrackNode[kMaxNodes];
}

// Deliberate amortised growth next to an emit, justified and
// suppressed.
void
Engine::onFreed(Frame *frame)
{
    if (_chunks.full()) {
        // klint:allow(hot-path-alloc): amortised, one chunk per 4096 frees.
        _chunks.push_back(std::make_unique<Chunk>());
    }
    _tracer.emit(TraceEventType::FrameFree, frame->tier, frame->pfn);
}

} // namespace kloc
