#ifndef SOME_RANDOM_GUARD
#define SOME_RANDOM_GUARD

#include "../base/units.hh"

#endif // SOME_RANDOM_GUARD
