#ifndef KLOC_MEM_RIGHT_HH
#define KLOC_MEM_RIGHT_HH

#include "base/units.hh"

#endif // KLOC_MEM_RIGHT_HH
