#include <cstddef>
#include <vector>

// Seeded violations: erasing from a container inside a range-for
// over that container, and mutating a gang-walked table while the
// scratch vector of pointers it produced is still being consumed.

struct FrameTable {
    std::size_t gangLookup(int tag, std::vector<int *> &out) {
        out.clear();
        return tag >= 0 ? out.size() : 0;
    }
    void insert(int *slot) { _slots.push_back(slot); }
    std::vector<int *> _slots;
};

struct PageCache {
    void dropStale() {
        for (int *frame : _dirty) {
            if (frame == nullptr)
                _dirty.erase(_dirty.begin());
        }
    }

    void evictCold() {
        const std::size_t n = _table.gangLookup(1, _scratch);
        for (std::size_t i = 0; i < n; ++i) {
            if (_scratch[i] != nullptr)
                _table.insert(nullptr);
        }
    }

    FrameTable _table;
    std::vector<int *> _dirty;
    std::vector<int *> _scratch;
};
