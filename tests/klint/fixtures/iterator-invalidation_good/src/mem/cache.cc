#include <cstddef>
#include <vector>

// Fixed forms: the range-for only counts, with the mutation deferred
// past the loop; the gang-walk consumer finishes reading the scratch
// results before any insert can resize the table behind them.

struct FrameTable {
    std::size_t gangLookup(int tag, std::vector<int *> &out) {
        out.clear();
        return tag >= 0 ? out.size() : 0;
    }
    void insert(int *slot) { _slots.push_back(slot); }
    std::vector<int *> _slots;
};

struct PageCache {
    void dropStale() {
        std::size_t keep = 0;
        for (int *frame : _dirty) {
            if (frame != nullptr)
                ++keep;
        }
        _dirty.resize(keep);
    }

    void evictCold() {
        const std::size_t n = _table.gangLookup(1, _scratch);
        std::size_t dead = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (_scratch[i] == nullptr)
                ++dead;
        }
        for (std::size_t k = 0; k < dead; ++k)
            _table.insert(nullptr);
    }

    FrameTable _table;
    std::vector<int *> _dirty;
    std::vector<int *> _scratch;
};
