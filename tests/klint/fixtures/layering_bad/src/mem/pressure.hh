#ifndef KLOC_MEM_PRESSURE_HH
#define KLOC_MEM_PRESSURE_HH

// Fixture: mem (layer 3) reaching up into fs (layer 6).
#include "fs/vfs.hh"

#endif // KLOC_MEM_PRESSURE_HH
