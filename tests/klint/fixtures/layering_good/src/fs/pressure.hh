#ifndef KLOC_FS_PRESSURE_HH
#define KLOC_FS_PRESSURE_HH

// Fixture: fs (layer 6) depending on mem (layer 3) is fine.
#include "mem/frame.hh"

#endif // KLOC_FS_PRESSURE_HH
