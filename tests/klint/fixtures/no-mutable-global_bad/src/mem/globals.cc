#include "mem/globals.hh"

// Every flavour of mutable static storage the rule must catch: a
// namespace-scope counter, a static at namespace scope, a
// function-local static cache, a static data member, and a
// thread_local scratch buffer.

namespace kloc {

unsigned g_total_frames;

static int s_last_tier = -1;

thread_local char t_scratch[64];

struct FrameIndex
{
    static FrameIndex *instance;
};

unsigned
bumpEpoch()
{
    static unsigned epoch = 0;
    return ++epoch;
}

} // namespace kloc
