#include "mem/globals.hh"

// Static storage is fine when immutable, and instance state is fine
// anywhere: nothing here outlives or escapes a single run.

namespace kloc {

constexpr unsigned kMaxTiers = 8;

const char *const kTierNames[] = {"fast", "slow"};

static constexpr int kRetries = 3;

static const unsigned kScanBatch = 64;

struct FrameIndex
{
    static constexpr unsigned kBuckets = 128;
    unsigned used = 0;  // instance member: per-run state
};

unsigned
bumpEpoch(unsigned epoch)
{
    return epoch + 1;
}

// Justified exception: amortised interning table, guarded upstream.
// klint:allow(no-mutable-global): amortised interning table,
// guarded upstream.
static unsigned s_interned_count = 0;

unsigned
internedCount()
{
    return s_interned_count;
}

} // namespace kloc
