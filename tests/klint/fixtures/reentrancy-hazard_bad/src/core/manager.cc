#include <cstddef>
#include <vector>

// Seeded violation: the findKnode bug class from the accounting-drain
// incident. A scheduled callback rotates the per-CPU list; findNode
// drains pending callbacks mid-loop (cpuWork -> charge -> runDue ->
// _hook()) while still holding index i, then uses the stale index.

struct Machine {
    void cpuWork(int ticks) { charge(ticks); }
    void charge(int ticks) {
        if (ticks > 0)
            runDue();
    }
    void runDue() {
        if (_hook != nullptr)
            _hook();
    }
    void (*_hook)() = nullptr;
};

static bool matches(int *entry, int key) { return entry != nullptr && key >= 0; }

struct Manager {
    void setup() {
        schedule([this] { rotateFront(); });
    }

    template <typename F>
    void schedule(F fn) {
        _armed = true;
        (void)fn;
    }

    void rotateFront() {
        auto &list = _perCpu[0];
        if (list.empty())
            return;
        int *head = list[0];
        list.erase(list.begin());
        list.insert(list.begin(), head);
    }

    int *findNode(int key) {
        auto &list = _perCpu[_cpu];
        for (std::size_t i = 0; i < list.size(); ++i) {
            if (matches(list[i], key)) {
                _machine.cpuWork(10);
                if (i != 0) {
                    int *node = list[i];
                    list.erase(list.begin() + i);
                    list.insert(list.begin(), node);
                }
                return list[0];
            }
        }
        return nullptr;
    }

    Machine _machine;
    bool _armed = false;
    int _cpu = 0;
    std::vector<int *> _perCpu[4];
};
