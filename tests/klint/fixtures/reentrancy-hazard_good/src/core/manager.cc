#include <cstddef>
#include <vector>

// Fixed form of the findNode pattern: the rotation happens while the
// index is still valid, and the drain (which can re-enter rotateFront
// through the scheduled callback) runs only after every index and
// element reference derived from the loop is dead.

struct Machine {
    void cpuWork(int ticks) { charge(ticks); }
    void charge(int ticks) {
        if (ticks > 0)
            runDue();
    }
    void runDue() {
        if (_hook != nullptr)
            _hook();
    }
    void (*_hook)() = nullptr;
};

static bool matches(int *entry, int key) { return entry != nullptr && key >= 0; }

struct Manager {
    void setup() {
        schedule([this] { rotateFront(); });
    }

    template <typename F>
    void schedule(F fn) {
        _armed = true;
        (void)fn;
    }

    void rotateFront() {
        auto &list = _perCpu[0];
        if (list.empty())
            return;
        int *head = list[0];
        list.erase(list.begin());
        list.insert(list.begin(), head);
    }

    int *findNode(int key) {
        auto &list = _perCpu[_cpu];
        for (std::size_t i = 0; i < list.size(); ++i) {
            if (matches(list[i], key)) {
                int *node = list[i];
                if (i != 0) {
                    list.erase(list.begin() + i);
                    list.insert(list.begin(), node);
                }
                _machine.cpuWork(10);
                return node;
            }
        }
        return nullptr;
    }

    Machine _machine;
    bool _armed = false;
    int _cpu = 0;
    std::vector<int *> _perCpu[4];
};
