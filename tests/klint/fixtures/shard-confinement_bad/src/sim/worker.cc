#include "sim/machine_core.hh"

// Seeded violations: a shard-scoped function (takes a ShardContext&)
// writes MachineCore-shared state mid-epoch — once directly through
// a barrier-drain method, once transitively through a helper.

struct ShardContext
{
    void charge(long ticks) { _now += ticks; }
    long now() const { return _now; }
    long _now = 0;
};

struct Worker
{
    explicit Worker(MachineCore &core) : _core(core) {}

    // BAD: folds into the shared counters while shards are running.
    void step(ShardContext &shard)
    {
        shard.charge(5);
        _core.foldRefsAtBarrier(1);
    }

    // BAD: the same write, reached through a helper call.
    void bumpPhase() { _core.setPhase(1); }
    void stepIndirect(ShardContext &shard)
    {
        shard.charge(1);
        bumpPhase();
    }

    MachineCore &_core;
};
