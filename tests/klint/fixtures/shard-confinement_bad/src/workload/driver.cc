#include "sim/machine_core.hh"

// Seeded violation (workload-body pattern): a figure driver's epoch
// body — the function the engine runs per shard per epoch — mutates
// MachineCore-shared phase state mid-epoch through a helper instead
// of posting the mutation to the epoch mailbox.

struct ShardContext
{
    void charge(long ticks) { _now += ticks; }
    long now() const { return _now; }
    long _now = 0;
};

struct Driver
{
    explicit Driver(MachineCore &core) : _core(core) {}

    void flushMemtable() { _core.setPhase(2); }

    // BAD: the epoch body flushes shared state while shards run.
    void shardEpoch(ShardContext &shard)
    {
        shard.charge(3);
        flushMemtable();
    }

    MachineCore &_core;
};
