#ifndef FIXTURE_SIM_MACHINE_CORE_HH
#define FIXTURE_SIM_MACHINE_CORE_HH

// Fixture twin of the real MachineCore: shard-shared state that may
// only mutate from *AtBarrier barrier-drain methods.

class MachineCore
{
  public:
    long refs() const { return _refs; }
    int phase() const { return _phase; }

    void foldRefsAtBarrier(long n) { _refs += n; }
    void setPhaseAtBarrier(int phase) { _phase = phase; }

  private:
    long _refs = 0;
    int _phase = 0;
};

#endif
