#include "sim/machine_core.hh"

// Clean twin: during the epoch the worker only touches shard-local
// state through the ShardContext; shared-state writes happen in a
// barrier-drain (*AtBarrier) method the coordinator calls.

struct ShardContext
{
    void charge(long ticks) { _now += ticks; }
    void noteOp() { ++_ops; }
    long now() const { return _now; }
    long ops() const { return _ops; }
    long _now = 0;
    long _ops = 0;
};

struct Worker
{
    explicit Worker(MachineCore &core) : _core(core) {}

    // Epoch path: shard-local work only.
    void step(ShardContext &shard)
    {
        shard.charge(5);
        shard.noteOp();
        ++_pendingRefs;
    }

    // Barrier path: the coordinator folds the pending effects in.
    void drainAtBarrier()
    {
        _core.foldRefsAtBarrier(_pendingRefs);
        _core.setPhaseAtBarrier(1);
        _pendingRefs = 0;
    }

    MachineCore &_core;
    long _pendingRefs = 0;
};
