#include <functional>
#include <vector>

#include "sim/machine_core.hh"

// Clean twin (workload-body pattern): the epoch body prices work on
// the shard and routes the shared-phase mutation through a mailbox
// post; the deferred apply — a lambda running in barrier context —
// is the only path that touches MachineCore.

struct ShardContext
{
    void charge(long ticks) { _now += ticks; }
    void post(std::function<void()> apply) { _mail.push_back(apply); }
    long now() const { return _now; }
    long _now = 0;
    std::vector<std::function<void()>> _mail;
};

struct Driver
{
    explicit Driver(MachineCore &core) : _core(core) {}

    // Epoch body: shard-local pricing; the flush rides the mailbox.
    void shardEpoch(ShardContext &shard)
    {
        shard.charge(3);
        shard.post([this] { applyFlushAtBarrier(); });
    }

    // Barrier drain: the only writer of shared state.
    void applyFlushAtBarrier() { _core.setPhaseAtBarrier(2); }

    MachineCore &_core;
};
