// Seeded violations: suppression comments that name no rule, use the
// retired free-form style, or reference a rule that does not exist.
// None of these actually suppress anything, which is exactly why the
// rule flags them instead of letting them rot silently.

struct Annotated {
    void tick() {
        // klint: allow(determinism) — legacy form, rationale not delimited
        int x = 0;
        // klint:allow(hot-path-alloc)
        int y = 0;
        // klint:allow(imaginary-rule): the rule name is not in the catalogue
        int z = 0;
        (void)x;
        (void)y;
        (void)z;
    }
};
