// Valid suppressions: rule name plus a rationale after the colon, or
// the blanket allow(all) form. Prose that merely mentions the tool
// name is not a suppression attempt and is left alone.

struct Annotated {
    void tick() {
        // klint:allow(determinism): order-independent reduction over a scratch map.
        int x = 0;
        // klint:allow(all): fixture exercising the blanket form.
        int y = 0;
        (void)x;
        (void)y;
    }
};

// This comment mentions klint in passing without an allow clause.
// And neither is allow(things) a suppression without the tool prefix.
