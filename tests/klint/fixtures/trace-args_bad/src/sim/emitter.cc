#include "trace/trace.hh"

namespace kloc {

struct Tracer
{
    void emit(TraceEventType type, unsigned long a = 0,
              unsigned long b = 0, unsigned long c = 0,
              unsigned long d = 0);
};

void
run(Tracer &tracer)
{
    // Fixture: frame_alloc declares 4 args, only 2 passed.
    tracer.emit(TraceEventType::FrameAlloc, 1, 2);
}

} // namespace kloc
