#include "trace/trace.hh"

namespace kloc {

struct EventSpec
{
    const char *name;
    unsigned argCount;
    const char *argNames[4];
};

const EventSpec kEventSpecs[2] = {
    {"frame_alloc", 4, {"tier", "pfn", "order", "class"}},
    {"frame_free",  4, {"tier", "pfn", "order", "class"}},
};

} // namespace kloc
