#include "trace/trace.hh"

namespace kloc {

struct Tracer
{
    void emit(TraceEventType type, unsigned long a = 0,
              unsigned long b = 0, unsigned long c = 0,
              unsigned long d = 0);
};

void
run(Tracer &tracer)
{
    tracer.emit(TraceEventType::FrameAlloc, 1, 2, 3, 4);
}

} // namespace kloc
