#ifndef KLOC_TRACE_TRACE_HH
#define KLOC_TRACE_TRACE_HH

namespace kloc {

enum class TraceEventType : unsigned char {
    FrameAlloc = 0,
    FrameFree,
    NumTypes
};

} // namespace kloc

#endif // KLOC_TRACE_TRACE_HH
