#ifndef KLOC_MEM_RESIZER_HH
#define KLOC_MEM_RESIZER_HH

#include <cstdint>

namespace kloc {

class Resizer
{
  public:
    // Fixture: a raw byte count should be Bytes.
    void resize(uint64_t new_bytes);
};

} // namespace kloc

#endif // KLOC_MEM_RESIZER_HH
