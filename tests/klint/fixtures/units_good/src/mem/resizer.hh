#ifndef KLOC_MEM_RESIZER_HH
#define KLOC_MEM_RESIZER_HH

#include <cstdint>

namespace kloc {

class Bytes;

class Resizer
{
  public:
    void resize(Bytes new_bytes);
    // Identity-like values stay raw by allowlisted name...
    void attach(uint64_t inode_id);

  private:
    // ...and private helpers are outside the public surface.
    void grow(uint64_t amount);
};

} // namespace kloc

#endif // KLOC_MEM_RESIZER_HH
