/**
 * @file
 * klint self-tests: every rule fires on its seeded "bad" fixture,
 * stays quiet on the "good" twin, and the real repository is clean
 * under the full rule set — so a regression in either the rules or
 * the codebase shows up here.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tools/klint/klint.hh"

namespace {

using klint::Finding;
using klint::Options;

std::vector<Finding>
runRule(const std::string &rule, const std::string &fixture)
{
    Options opts;
    opts.root = std::string(KLINT_FIXTURE_DIR) + "/" + fixture;
    opts.rules = {rule};
    return klint::runKlint(opts);
}

int
countOf(const std::vector<Finding> &findings, const std::string &rule)
{
    int n = 0;
    for (const Finding &f : findings)
        if (f.rule == rule)
            ++n;
    return n;
}

class KlintRuleFixtures
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(KlintRuleFixtures, FiresOnBadFixture)
{
    const std::string rule = GetParam();
    const auto findings = runRule(rule, rule + "_bad");
    EXPECT_GE(countOf(findings, rule), 1)
        << "rule '" << rule << "' missed its seeded violation";
}

TEST_P(KlintRuleFixtures, QuietOnGoodFixture)
{
    const std::string rule = GetParam();
    const auto findings = runRule(rule, rule + "_good");
    EXPECT_EQ(countOf(findings, rule), 0)
        << "rule '" << rule << "' false-positive: "
        << (findings.empty() ? "" : findings.front().message);
}

INSTANTIATE_TEST_SUITE_P(AllRules, KlintRuleFixtures,
                         ::testing::Values("determinism",
                                           "checker-coverage",
                                           "fault-site-coverage",
                                           "layering",
                                           "units", "trace-args",
                                           "hot-path-alloc",
                                           "include-hygiene",
                                           "no-mutable-global",
                                           "determinism-taint",
                                           "reentrancy-hazard",
                                           "iterator-invalidation",
                                           "shard-confinement",
                                           "suppression-format"),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &c : name)
                                 if (c == '-')
                                     c = '_';
                             return name;
                         });

TEST(Klint, DeterminismBadFixtureFlagsBothPatterns)
{
    const auto findings = runRule("determinism", "determinism_bad");
    // The fixture seeds an unordered range-for AND a rand() call.
    EXPECT_GE(countOf(findings, "determinism"), 2);
}

TEST(Klint, FaultSiteCoverageFlagsBothGaps)
{
    const auto findings =
        runRule("fault-site-coverage", "fault-site-coverage_bad");
    // OrphanSite is neither consulted nor checked: one finding each.
    EXPECT_EQ(countOf(findings, "fault-site-coverage"), 2);
}

TEST(Klint, ReentrancyHazardCatchesFindKnodePattern)
{
    // The seeded bug is the findKnode incident: a classic loop holds
    // index i into _perCpu[cpu], calls into the machine (which drains
    // a scheduled callback that rotates the list), then keeps using i.
    const auto findings =
        runRule("reentrancy-hazard", "reentrancy-hazard_bad");
    ASSERT_GE(countOf(findings, "reentrancy-hazard"), 1);
    bool namesDrainChain = false;
    for (const Finding &f : findings)
        if (f.message.find("cpuWork") != std::string::npos &&
            f.message.find("_perCpu[]") != std::string::npos)
            namesDrainChain = true;
    EXPECT_TRUE(namesDrainChain)
        << "witness chain should name the draining call and container";
}

TEST(Klint, DeterminismTaintFlagsAllThreeSinkKinds)
{
    // Policy return, trace emit, and bench report.add() sinks.
    const auto findings =
        runRule("determinism-taint", "determinism-taint_bad");
    EXPECT_GE(countOf(findings, "determinism-taint"), 3);
}

TEST(Klint, ShardConfinementFlagsDirectAndTransitiveWrites)
{
    // The bad fixture seeds a direct barrier-method call, a write
    // reached through a helper, and a workload epoch body flushing
    // shared state — all from shard-scoped functions.
    const auto findings =
        runRule("shard-confinement", "shard-confinement_bad");
    EXPECT_GE(countOf(findings, "shard-confinement"), 3);
    bool namesHelperChain = false, namesBodyFlush = false;
    for (const Finding &f : findings) {
        if (f.message.find("bumpPhase") != std::string::npos &&
            f.message.find("_phase") != std::string::npos)
            namesHelperChain = true;
        if (f.message.find("shardEpoch") != std::string::npos &&
            f.message.find("flushMemtable") != std::string::npos)
            namesBodyFlush = true;
    }
    EXPECT_TRUE(namesHelperChain)
        << "witness should name the helper chain and the core member";
    EXPECT_TRUE(namesBodyFlush)
        << "the workload-body pattern (epoch body flushing shared "
           "state) should be flagged by name";
}

TEST(Klint, IteratorInvalidationFlagsRangeForAndGangWalk)
{
    const auto findings =
        runRule("iterator-invalidation", "iterator-invalidation_bad");
    EXPECT_GE(countOf(findings, "iterator-invalidation"), 2);
}

TEST(Klint, SuppressionGrammarRequiresRuleAndRationale)
{
    using klint::suppressionCovers;
    EXPECT_TRUE(suppressionCovers(
        "// klint:allow(determinism): order-free.", "determinism"));
    EXPECT_TRUE(suppressionCovers(
        "// klint:allow(all): blanket.", "determinism"));
    // Legacy free-form, rationale-less, and wrong-rule comments must
    // not silence anything.
    EXPECT_FALSE(suppressionCovers(
        "// klint: allow(determinism) legacy prose", "determinism"));
    EXPECT_FALSE(suppressionCovers(
        "// klint:allow(determinism)", "determinism"));
    EXPECT_FALSE(suppressionCovers(
        "// klint:allow(determinism):", "determinism"));
    EXPECT_FALSE(suppressionCovers(
        "// klint:allow(units): wrong rule.", "determinism"));
}

TEST(Klint, RuleFilterRunsOnlySelectedRules)
{
    Options opts;
    opts.root = std::string(KLINT_FIXTURE_DIR) + "/determinism_bad";
    opts.rules = {"layering"};
    EXPECT_TRUE(klint::runKlint(opts).empty());
}

TEST(Klint, RealRepositoryIsClean)
{
    Options opts;
    opts.root = KLINT_REPO_ROOT;
    const auto findings = klint::runKlint(opts);
    for (const Finding &f : findings) {
        ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule
                      << "] " << f.message;
    }
    EXPECT_TRUE(findings.empty());
}

TEST(Klint, SuppressionCommentSilencesFinding)
{
    // The repo itself relies on suppressions (e.g. the
    // order-independent reduction in invariants.cc); this guards the
    // mechanism by checking a finding reappears when the rule list
    // excludes nothing but the fixture has no annotation.
    const auto bad = runRule("determinism", "determinism_bad");
    ASSERT_FALSE(bad.empty());
    // Findings carry exact location so suppressions can be audited.
    EXPECT_FALSE(bad.front().file.empty());
    EXPECT_GT(bad.front().line, 0);
}

} // namespace
