/**
 * @file
 * klint CLI and cache tests: exit codes (0 clean, 1 findings,
 * 2 usage), the --json report schema with stable finding IDs, and
 * index-cache invalidation when a file's content hash changes.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/klint/cli.hh"
#include "tools/klint/klint.hh"

namespace {

namespace fs = std::filesystem;

using klint::Options;
using klint::RunStats;

std::string
fixture(const std::string &name)
{
    return std::string(KLINT_FIXTURE_DIR) + "/" + name;
}

struct CliResult {
    int code;
    std::string out;
    std::string err;
};

CliResult
runCli(const std::vector<std::string> &args)
{
    std::ostringstream out;
    std::ostringstream err;
    const int code = klint::cliMain(args, out, err);
    return {code, out.str(), err.str()};
}

TEST(KlintCli, CleanTreeExitsZero)
{
    const auto r = runCli({"--root=" + fixture("determinism_good"),
                           "--rules=determinism"});
    EXPECT_EQ(r.code, 0);
    EXPECT_TRUE(r.err.empty()) << r.err;
}

TEST(KlintCli, FindingsExitOne)
{
    const auto r = runCli({"--root=" + fixture("determinism_bad"),
                           "--rules=determinism"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.out.find("[determinism]"), std::string::npos) << r.out;
    EXPECT_NE(r.err.find("finding"), std::string::npos) << r.err;
}

TEST(KlintCli, UnknownArgumentExitsTwo)
{
    const auto r = runCli({"--frobnicate"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("usage:"), std::string::npos) << r.err;
}

TEST(KlintCli, JsonReportMatchesSchema)
{
    const auto r = runCli({"--root=" + fixture("determinism_bad"),
                           "--rules=determinism", "--json"});
    EXPECT_EQ(r.code, 1);
    // Golden schema fragments: version, findings array with stable
    // ids, and the stats block the CI cache job monitors.
    EXPECT_NE(r.out.find("\"version\": 1"), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("\"findings\": ["), std::string::npos);
    EXPECT_NE(r.out.find("\"id\": \""), std::string::npos);
    EXPECT_NE(r.out.find("\"rule\": \"determinism\""), std::string::npos);
    EXPECT_NE(r.out.find("\"line\": "), std::string::npos);
    EXPECT_NE(r.out.find("\"stats\": {\"filesScanned\": "),
              std::string::npos);

    // IDs are content-hashed, so a re-run is byte-identical.
    const auto again = runCli({"--root=" + fixture("determinism_bad"),
                               "--rules=determinism", "--json"});
    EXPECT_EQ(r.out, again.out);
}

TEST(KlintCli, GithubModeEmitsAnnotations)
{
    const auto r = runCli({"--root=" + fixture("determinism_bad"),
                           "--rules=determinism", "--github"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.out.find("::error file="), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("title=klint(determinism)"), std::string::npos);
}

TEST(KlintCli, ListRulesNamesTheFullCatalogue)
{
    const auto r = runCli({"--list-rules"});
    EXPECT_EQ(r.code, 0);
    for (const char *rule :
         {"determinism", "determinism-taint", "reentrancy-hazard",
          "iterator-invalidation", "suppression-format",
          "no-mutable-global"})
        EXPECT_NE(r.out.find(rule), std::string::npos)
            << "missing rule in --list-rules: " << rule;
}

class KlintCacheTest : public ::testing::Test {
  protected:
    void SetUp() override
    {
        // ctest runs each TEST_F as its own process, possibly in
        // parallel: the tree must be unique per process and test.
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        _root = fs::temp_directory_path() /
                (std::string("klint_cache_test_") + info->name() + "_" +
                 std::to_string(static_cast<long>(::getpid())));
        fs::remove_all(_root);
        fs::create_directories(_root / "src/mem");
        write("src/mem/a.cc", "int alpha() { return 1; }\n");
        write("src/mem/b.cc", "int beta() { return 2; }\n");
    }

    void TearDown() override { fs::remove_all(_root); }

    void write(const std::string &rel, const std::string &text)
    {
        std::ofstream f(_root / rel);
        f << text;
    }

    RunStats run()
    {
        Options opts;
        opts.root = _root.string();
        opts.rules = {"determinism"};
        opts.cachePath = (_root / "cache.txt").string();
        RunStats stats;
        opts.stats = &stats;
        klint::runKlint(opts);
        return stats;
    }

    fs::path _root;
};

TEST_F(KlintCacheTest, SecondRunServedEntirelyFromCache)
{
    const RunStats cold = run();
    EXPECT_EQ(cold.filesScanned, 2u);
    EXPECT_EQ(cold.indexCacheHits, 0u);
    EXPECT_EQ(cold.indexCacheMisses, 2u);

    const RunStats warm = run();
    EXPECT_EQ(warm.indexCacheHits, 2u);
    EXPECT_EQ(warm.indexCacheMisses, 0u);
}

TEST_F(KlintCacheTest, EditInvalidatesOnlyTheChangedFile)
{
    run();
    write("src/mem/b.cc", "int beta() { return 3; }\n");
    const RunStats after = run();
    EXPECT_EQ(after.indexCacheHits, 1u);
    EXPECT_EQ(after.indexCacheMisses, 1u);
}

TEST_F(KlintCacheTest, CachedRunFindingsMatchColdRun)
{
    // Seed a real violation so the finding set is non-trivial, then
    // check cached indexing does not change the diagnostics.
    write("src/mem/c.cc",
          "#include <unordered_map>\n"
          "int walk(std::unordered_map<int,int> &m) {\n"
          "    int last = 0;\n"
          "    for (auto &kv : m) last = kv.first;\n"
          "    return last;\n"
          "}\n");
    Options opts;
    opts.root = _root.string();
    opts.cachePath = (_root / "cache.txt").string();
    const auto cold = klint::runKlint(opts);
    const auto warm = klint::runKlint(opts);
    ASSERT_EQ(cold.size(), warm.size());
    for (size_t i = 0; i < cold.size(); ++i) {
        EXPECT_EQ(cold[i].rule, warm[i].rule);
        EXPECT_EQ(cold[i].file, warm[i].file);
        EXPECT_EQ(cold[i].line, warm[i].line);
        EXPECT_EQ(cold[i].message, warm[i].message);
    }
}

} // namespace
