/**
 * @file
 * Kernel-object taxonomy and KernelHeap tests: Table 1 kinds, slab
 * vs page backing, relocatability rules, placement-policy use, app
 * pages, and the kswapd reclaim hook.
 */

#include <gtest/gtest.h>

#include "kobj/kernel_heap.hh"
#include "mem/placement.hh"
#include "sim/machine.hh"

namespace kloc {
namespace {

TEST(KobjKinds, TaxonomyIsComplete)
{
    for (unsigned i = 0; i < kNumKobjKinds; ++i) {
        const auto kind = static_cast<KobjKind>(i);
        EXPECT_GT(kobjSize(kind), 0u);
        EXPECT_STRNE(kobjKindName(kind), "unknown");
        EXPECT_LT(static_cast<unsigned>(kobjClass(kind)),
                  kNumObjClasses);
    }
}

TEST(KobjKinds, PageBackedKindsArePageSized)
{
    for (unsigned i = 0; i < kNumKobjKinds; ++i) {
        const auto kind = static_cast<KobjKind>(i);
        if (!kobjIsSlab(kind))
            EXPECT_EQ(kobjSize(kind), kPageSize);
        else
            EXPECT_LE(kobjSize(kind), kPageSize);
    }
}

TEST(KobjKinds, ClassMappingMatchesTable1)
{
    EXPECT_EQ(kobjClass(KobjKind::Inode), ObjClass::FsSlab);
    EXPECT_EQ(kobjClass(KobjKind::Dentry), ObjClass::FsSlab);
    EXPECT_EQ(kobjClass(KobjKind::JournalRecord), ObjClass::Journal);
    EXPECT_EQ(kobjClass(KobjKind::JournalPage), ObjClass::Journal);
    EXPECT_EQ(kobjClass(KobjKind::Bio), ObjClass::BlockIo);
    EXPECT_EQ(kobjClass(KobjKind::BlkMqCtx), ObjClass::BlockIo);
    EXPECT_EQ(kobjClass(KobjKind::Sock), ObjClass::SockBuf);
    EXPECT_EQ(kobjClass(KobjKind::SkbuffHead), ObjClass::SockBuf);
    EXPECT_EQ(kobjClass(KobjKind::SkbuffData), ObjClass::SockBuf);
    EXPECT_EQ(kobjClass(KobjKind::RxBuf), ObjClass::SockBuf);
    EXPECT_EQ(kobjClass(KobjKind::PageCachePage), ObjClass::PageCache);
}

class KernelHeapTest : public ::testing::Test
{
  protected:
    KernelHeapTest()
        : machine(4, 1), tiers(machine), lru(machine, tiers),
          mem(machine, lru), heap(mem, tiers)
    {
        TierSpec spec;
        spec.name = "fast";
        spec.capacity = 64 * kPageSize;
        spec.readLatency = Tick{80};
        spec.writeLatency = Tick{80};
        spec.readBandwidth = 10 * kGiB;
        spec.writeBandwidth = 10 * kGiB;
        fastId = tiers.addTier(spec);
        spec.name = "slow";
        spec.capacity = 256 * kPageSize;
        slowId = tiers.addTier(spec);
        placement = std::make_unique<StaticPlacement>(
            TierPreference{fastId, slowId},
            TierPreference{fastId, slowId});
        heap.setPolicy(placement.get());
    }

    Machine machine;
    TierManager tiers;
    LruEngine lru;
    MemAccessor mem;
    KernelHeap heap;
    std::unique_ptr<StaticPlacement> placement;
    TierId fastId = kInvalidTier;
    TierId slowId = kInvalidTier;
};

TEST_F(KernelHeapTest, SlabKindGetsSlabBacking)
{
    KernelObject inode(KobjKind::Inode);
    ASSERT_TRUE(heap.allocBacking(inode, true, 0));
    EXPECT_TRUE(inode.slab.valid());
    EXPECT_EQ(inode.page, nullptr);
    EXPECT_NE(inode.frame(), nullptr);
    EXPECT_EQ(inode.frame()->objClass, ObjClass::FsSlab);
    heap.freeBacking(inode);
    EXPECT_FALSE(inode.backed());
}

TEST_F(KernelHeapTest, PageKindGetsWholeFrame)
{
    KernelObject page(KobjKind::PageCachePage);
    ASSERT_TRUE(heap.allocBacking(page, true, 0));
    EXPECT_FALSE(page.slab.valid());
    ASSERT_NE(page.page, nullptr);
    EXPECT_EQ(page.page->pages(), 1u);
    EXPECT_EQ(page.page->objClass, ObjClass::PageCache);
    heap.freeBacking(page);
}

TEST_F(KernelHeapTest, RelocatabilityRules)
{
    // Page cache and journal pages are always relocatable.
    KernelObject cache_page(KobjKind::PageCachePage);
    heap.allocBacking(cache_page, true, 0);
    EXPECT_TRUE(cache_page.page->relocatable);

    // Driver rx buffers are physically referenced: not relocatable
    // on a stock kernel...
    KernelObject rx(KobjKind::RxBuf);
    heap.allocBacking(rx, true, 0);
    EXPECT_FALSE(rx.page->relocatable);

    // ...until the KLOC allocation interface is enabled.
    heap.setKlocInterface(true);
    KernelObject rx2(KobjKind::RxBuf);
    heap.allocBacking(rx2, true, 0);
    EXPECT_TRUE(rx2.page->relocatable);

    // Slab objects follow the same rule.
    KernelObject inode(KobjKind::Inode);
    heap.allocBacking(inode, true, 7);
    EXPECT_TRUE(inode.frame()->relocatable);

    heap.freeBacking(cache_page);
    heap.freeBacking(rx);
    heap.freeBacking(rx2);
    heap.freeBacking(inode);
}

TEST_F(KernelHeapTest, AppPageAccounting)
{
    Frame *a = heap.allocAppPage();
    Frame *b = heap.allocAppPage();
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->objClass, ObjClass::App);
    EXPECT_EQ(heap.liveAppPages(), 2u);
    EXPECT_EQ(heap.cumulativeAppPages(), 2u);
    heap.freeAppPage(a);
    EXPECT_EQ(heap.liveAppPages(), 1u);
    EXPECT_EQ(heap.cumulativeAppPages(), 2u);
    heap.freeAppPage(b);
}

TEST_F(KernelHeapTest, InodeIdsAreUnique)
{
    const uint64_t a = heap.allocInodeId();
    const uint64_t b = heap.allocInodeId();
    EXPECT_NE(a, b);
    EXPECT_GT(b, a);
}

TEST_F(KernelHeapTest, TouchObjectChargesAndMarksDirty)
{
    KernelObject page(KobjKind::PageCachePage);
    heap.allocBacking(page, true, 0);
    const Tick before = machine.now();
    heap.touchObject(page, AccessType::Write);
    EXPECT_GT(machine.now(), before);
    EXPECT_TRUE(page.frame()->dirty);
    EXPECT_EQ(machine.kernelRefs(), 1u);
    heap.freeBacking(page);
}

TEST_F(KernelHeapTest, ReclaimHookFiresUnderPressure)
{
    int hook_calls = 0;
    heap.setReclaimHook([&](TierId tier, uint64_t) -> uint64_t {
        EXPECT_EQ(tier, fastId);
        ++hook_calls;
        return 1;  // pretend progress so no backoff
    });
    // Drain the fast tier below the kswapd watermark (64 pages).
    std::vector<Frame *> hogs;
    for (int i = 0; i < 60; ++i)
        hogs.push_back(tiers.alloc(0, ObjClass::App, true, {fastId}));
    KernelObject obj(KobjKind::PageCachePage);
    ASSERT_TRUE(heap.allocBacking(obj, /*knode_active=*/true, 0));
    EXPECT_GT(hook_calls, 0) << "kswapd hook never invoked";
    heap.freeBacking(obj);
    for (Frame *f : hogs)
        tiers.free(f);
}

TEST_F(KernelHeapTest, ReclaimHookSkippedForInactive)
{
    int hook_calls = 0;
    heap.setReclaimHook([&](TierId, uint64_t) -> uint64_t {
        ++hook_calls;
        return 1;
    });
    std::vector<Frame *> hogs;
    for (int i = 0; i < 60; ++i)
        hogs.push_back(tiers.alloc(0, ObjClass::App, true, {fastId}));
    KernelObject obj(KobjKind::PageCachePage);
    ASSERT_TRUE(heap.allocBacking(obj, /*knode_active=*/false, 0));
    EXPECT_EQ(hook_calls, 0) << "cold allocation triggered reclaim";
    heap.freeBacking(obj);
    for (Frame *f : hogs)
        tiers.free(f);
}

} // namespace
} // namespace kloc
