/**
 * @file
 * Buddy allocator tests: split/coalesce correctness, alignment,
 * determinism, exhaustion behaviour, and a random churn property
 * test validated with the allocator's own consistency checker.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "base/rng.hh"
#include "mem/buddy_allocator.hh"

namespace kloc {
namespace {

TEST(Buddy, FreshAllocatorIsEmpty)
{
    BuddyAllocator buddy(FrameCount{1024});
    EXPECT_EQ(buddy.totalFrames(), 1024u);
    EXPECT_EQ(buddy.usedFrames(), 0u);
    EXPECT_EQ(buddy.freeFrames(), 1024u);
    EXPECT_EQ(buddy.maxAvailableOrder(), 10);
    buddy.validate();
}

TEST(Buddy, Order0AllocFree)
{
    BuddyAllocator buddy(FrameCount{64});
    const Pfn pfn = buddy.alloc(0);
    ASSERT_NE(pfn, kInvalidPfn);
    EXPECT_EQ(buddy.usedFrames(), 1u);
    buddy.free(pfn, 0);
    EXPECT_EQ(buddy.usedFrames(), 0u);
    buddy.validate();
}

TEST(Buddy, HighOrderAlignment)
{
    BuddyAllocator buddy(FrameCount{4096});
    for (unsigned order = 1; order <= 10; ++order) {
        const Pfn pfn = buddy.alloc(order);
        ASSERT_NE(pfn, kInvalidPfn);
        EXPECT_EQ(pfn & ((1ULL << order) - 1), 0u)
            << "order " << order << " misaligned";
        buddy.free(pfn, order);
    }
    EXPECT_EQ(buddy.freeFrames(), 4096u);
    buddy.validate();
}

TEST(Buddy, CoalescingRestoresMaxOrder)
{
    BuddyAllocator buddy(FrameCount{1024});
    std::vector<Pfn> pfns;
    for (int i = 0; i < 1024; ++i) {
        const Pfn pfn = buddy.alloc(0);
        ASSERT_NE(pfn, kInvalidPfn);
        pfns.push_back(pfn);
    }
    EXPECT_EQ(buddy.maxAvailableOrder(), -1);
    for (const Pfn pfn : pfns)
        buddy.free(pfn, 0);
    EXPECT_EQ(buddy.maxAvailableOrder(), 10);
    buddy.validate();
}

TEST(Buddy, ExhaustionReturnsInvalid)
{
    BuddyAllocator buddy(FrameCount{4});
    EXPECT_NE(buddy.alloc(2), kInvalidPfn);
    EXPECT_EQ(buddy.alloc(0), kInvalidPfn);
    EXPECT_EQ(buddy.alloc(2), kInvalidPfn);
}

TEST(Buddy, AllocationsDoNotOverlap)
{
    BuddyAllocator buddy(FrameCount{512});
    Rng rng(3);
    std::set<Pfn> owned;
    std::vector<std::pair<Pfn, unsigned>> blocks;
    while (true) {
        const auto order = static_cast<unsigned>(rng.nextBounded(4));
        const Pfn pfn = buddy.alloc(order);
        if (pfn == kInvalidPfn)
            break;
        for (Pfn p = pfn; p < pfn + (1ULL << order); ++p) {
            ASSERT_TRUE(owned.insert(p).second)
                << "frame " << p << " double-allocated";
        }
        blocks.emplace_back(pfn, order);
    }
    for (auto &[pfn, order] : blocks)
        buddy.free(pfn, order);
    buddy.validate();
    EXPECT_EQ(buddy.freeFrames(), 512u);
}

TEST(Buddy, DeterministicLowestAddressFirst)
{
    BuddyAllocator a(FrameCount{256}), b(FrameCount{256});
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(a.alloc(0), b.alloc(0));
}

TEST(Buddy, NonPowerOfTwoFrameSpace)
{
    // 1000 frames: trailing frames covered by smaller blocks.
    BuddyAllocator buddy(FrameCount{1000});
    buddy.validate();
    std::vector<Pfn> pfns;
    Pfn pfn;
    while ((pfn = buddy.alloc(0)) != kInvalidPfn)
        pfns.push_back(pfn);
    EXPECT_EQ(pfns.size(), 1000u);
    for (const Pfn p : pfns)
        buddy.free(p, 0);
    buddy.validate();
}

class BuddyChurn : public ::testing::TestWithParam<int>
{};

TEST_P(BuddyChurn, RandomAllocFreeKeepsConsistency)
{
    Rng rng(static_cast<uint64_t>(GetParam()));
    BuddyAllocator buddy(FrameCount{2048});
    std::vector<std::pair<Pfn, unsigned>> live;
    for (int step = 0; step < 5000; ++step) {
        if (live.empty() || rng.nextBool(0.55)) {
            const auto order = static_cast<unsigned>(rng.nextBounded(6));
            const Pfn pfn = buddy.alloc(order);
            if (pfn != kInvalidPfn)
                live.emplace_back(pfn, order);
        } else {
            const auto idx = rng.nextBounded(live.size());
            buddy.free(live[idx].first, live[idx].second);
            live[idx] = live.back();
            live.pop_back();
        }
        if (step % 500 == 0)
            buddy.validate();
    }
    uint64_t live_frames = 0;
    for (auto &[pfn, order] : live)
        live_frames += 1ULL << order;
    EXPECT_EQ(buddy.usedFrames(), live_frames);
    for (auto &[pfn, order] : live)
        buddy.free(pfn, order);
    buddy.validate();
    EXPECT_EQ(buddy.usedFrames(), 0u);
    EXPECT_EQ(buddy.maxAvailableOrder(), 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuddyChurn,
                         ::testing::Values(2, 4, 8, 16, 32, 64));

} // namespace
} // namespace kloc
