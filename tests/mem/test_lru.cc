/**
 * @file
 * LRU engine tests: two-list promotion dynamics, scan aging and
 * demotion candidates, two-scan promotion confirmation, migration
 * list handoff, and scan cost accounting.
 */

#include <gtest/gtest.h>

#include "mem/lru.hh"
#include "mem/migration.hh"
#include "sim/machine.hh"

namespace kloc {
namespace {

class LruTest : public ::testing::Test
{
  protected:
    LruTest() : machine(2, 1), tiers(machine), lru(machine, tiers)
    {
        TierSpec spec;
        spec.name = "fast";
        spec.capacity = 128 * kPageSize;
        spec.readLatency = Tick{80};
        spec.writeLatency = Tick{80};
        spec.readBandwidth = 10 * kGiB;
        spec.writeBandwidth = 10 * kGiB;
        fastId = tiers.addTier(spec);
        spec.name = "slow";
        spec.capacity = 128 * kPageSize;
        slowId = tiers.addTier(spec);
    }

    Frame *
    alloc(TierId tier)
    {
        Frame *frame = tiers.alloc(0, ObjClass::PageCache, true, {tier});
        EXPECT_NE(frame, nullptr);
        return frame;
    }

    Machine machine;
    TierManager tiers;
    LruEngine lru;
    TierId fastId = kInvalidTier;
    TierId slowId = kInvalidTier;
};

TEST_F(LruTest, FreshFramesStartInactive)
{
    Frame *frame = alloc(fastId);
    EXPECT_FALSE(frame->onActiveList);
    EXPECT_EQ(lru.inactiveCount(fastId), 1u);
    EXPECT_EQ(lru.activeCount(fastId), 0u);
    tiers.free(frame);
    EXPECT_EQ(lru.inactiveCount(fastId), 0u);
}

TEST_F(LruTest, SecondTouchActivates)
{
    Frame *frame = alloc(fastId);
    lru.onAccessed(frame);
    EXPECT_FALSE(frame->onActiveList) << "one touch must not activate";
    lru.onAccessed(frame);
    EXPECT_TRUE(frame->onActiveList);
    EXPECT_EQ(lru.activeCount(fastId), 1u);
    tiers.free(frame);
}

TEST_F(LruTest, ScanDeactivatesUnreferencedActives)
{
    Frame *frame = alloc(fastId);
    lru.onAccessed(frame);
    lru.onAccessed(frame);
    ASSERT_TRUE(frame->onActiveList);
    // First scan clears the referenced bit set by activation...
    lru.scanTier(fastId, FrameCount{100});
    // ...the next scan (no touches in between) deactivates.
    lru.scanTier(fastId, FrameCount{100});
    EXPECT_FALSE(frame->onActiveList);
    tiers.free(frame);
}

TEST_F(LruTest, ColdInactiveFramesAreDemoteCandidates)
{
    Frame *hot = alloc(fastId);
    Frame *cold = alloc(fastId);
    lru.onAccessed(hot);  // referenced while inactive
    ScanResult result = lru.scanTier(fastId, FrameCount{100});
    ASSERT_EQ(result.demoteCandidates.size(), 1u);
    EXPECT_EQ(result.demoteCandidates[0].get(), cold);
    tiers.free(hot);
    tiers.free(cold);
}

TEST_F(LruTest, ScanChargesPaperCalibratedCost)
{
    for (int i = 0; i < 100; ++i)
        alloc(fastId);
    const Tick before = machine.now();
    ScanResult result = lru.scanTier(fastId, FrameCount{100});
    EXPECT_EQ(result.scanned, 100u);
    // 2 us per page, divided by the background factor of 4.
    EXPECT_EQ(machine.now() - before,
              100 * LruEngine::kScanCostPerPage / 4);
    EXPECT_EQ(lru.totalScanned(), 100u);
}

TEST_F(LruTest, CollectHotRequiresTwoScans)
{
    Frame *frame = alloc(slowId);
    lru.onAccessed(frame);
    lru.onAccessed(frame);
    ASSERT_TRUE(frame->onActiveList);
    auto first = lru.collectHot(slowId, FrameCount{10});
    EXPECT_TRUE(first.empty()) << "promoted without confirmation scan";
    auto second = lru.collectHot(slowId, FrameCount{10});
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0].get(), frame);
    tiers.free(frame);
}

TEST_F(LruTest, MigrationMovesListMembership)
{
    Machine &m = machine;
    (void)m;
    MigrationEngine migrator(machine, tiers, lru);
    Frame *frame = alloc(fastId);
    lru.onAccessed(frame);
    lru.onAccessed(frame);
    ASSERT_TRUE(frame->onActiveList);
    ASSERT_TRUE(migrator.migrateOne(frame, slowId));
    EXPECT_EQ(frame->tier, slowId);
    EXPECT_EQ(lru.activeCount(fastId), 0u);
    // Demotion strips active standing (deactivate-on-demote).
    EXPECT_EQ(lru.inactiveCount(slowId), 1u);
    EXPECT_FALSE(frame->onActiveList);
    EXPECT_FALSE(frame->referenced);
    tiers.free(frame);
}

TEST_F(LruTest, DeactivateStripsStanding)
{
    Frame *frame = alloc(fastId);
    lru.onAccessed(frame);
    lru.onAccessed(frame);
    ASSERT_TRUE(frame->onActiveList);
    lru.deactivate(frame);
    EXPECT_FALSE(frame->onActiveList);
    EXPECT_FALSE(frame->referenced);
    EXPECT_EQ(lru.inactiveCount(fastId), 1u);
    tiers.free(frame);
}

TEST_F(LruTest, ScanBudgetLimitsWork)
{
    for (int i = 0; i < 50; ++i)
        alloc(fastId);
    ScanResult result = lru.scanTier(fastId, FrameCount{10});
    EXPECT_EQ(result.scanned, 10u);
    EXPECT_LE(result.demoteCandidates.size(), 10u);
}

TEST_F(LruTest, ScanChargesPerPageForHighOrderFrames)
{
    // 8 order-2 frames: 8 list entries but 32 pages of page-table
    // walking. Scan cost must follow pages, not frames.
    std::vector<Frame *> frames;
    for (int i = 0; i < 8; ++i) {
        Frame *frame = tiers.alloc(2, ObjClass::App, true, {fastId});
        ASSERT_NE(frame, nullptr);
        frames.push_back(frame);
    }
    const Tick before = machine.now();
    ScanResult result = lru.scanTier(fastId, FrameCount{8});
    EXPECT_EQ(result.scanned, 8u);
    EXPECT_EQ(result.pagesVisited, 32u);
    EXPECT_EQ(machine.now() - before,
              32 * LruEngine::kScanCostPerPage / 4);
    EXPECT_EQ(lru.totalPagesVisited(), 32u);
    for (Frame *frame : frames)
        tiers.free(frame);
}

TEST_F(LruTest, TruncatedScanChargesVisitedPages)
{
    // A scan that early-exits on budget still pays for every page it
    // actually looked at — no free peeking.
    for (int i = 0; i < 50; ++i)
        alloc(fastId);
    const Tick before = machine.now();
    ScanResult result = lru.scanTier(fastId, FrameCount{10});
    EXPECT_EQ(result.scanned, 10u);
    EXPECT_EQ(result.pagesVisited, 10u);
    EXPECT_EQ(machine.now() - before,
              10 * LruEngine::kScanCostPerPage / 4);
}

TEST_F(LruTest, CollectHotChargesPerPage)
{
    // 4 order-1 frames = 8 pages visited per collection pass.
    std::vector<Frame *> frames;
    for (int i = 0; i < 4; ++i) {
        Frame *frame = tiers.alloc(1, ObjClass::App, true, {slowId});
        ASSERT_NE(frame, nullptr);
        lru.onAccessed(frame);
        lru.onAccessed(frame);
        frames.push_back(frame);
    }
    const uint64_t before = lru.totalPagesVisited();
    std::vector<FrameRef> hot;
    lru.collectHot(slowId, FrameCount{10}, hot);
    EXPECT_EQ(lru.totalPagesVisited() - before, 8u);
    for (Frame *frame : frames)
        tiers.free(frame);
}

TEST_F(LruTest, ScratchReuseClearsBetweenScans)
{
    // Policies keep one ScanResult/vector alive across ticks; each
    // call must start from cleared state, not accumulate.
    for (int i = 0; i < 20; ++i)
        alloc(fastId);
    ScanResult scratch;
    lru.scanTier(fastId, FrameCount{20}, scratch);
    EXPECT_EQ(scratch.scanned, 20u);
    const size_t first_candidates = scratch.demoteCandidates.size();
    EXPECT_GT(first_candidates, 0u);
    // Second scan with the same scratch: the inactive frames were
    // rotated, results must not stack on top of the first pass.
    lru.scanTier(fastId, FrameCount{20}, scratch);
    EXPECT_EQ(scratch.scanned, 20u);
    EXPECT_LE(scratch.demoteCandidates.size(), 20u);
    // An empty tier yields an empty (but reusable) result.
    lru.scanTier(slowId, FrameCount{20}, scratch);
    EXPECT_EQ(scratch.scanned, 0u);
    EXPECT_TRUE(scratch.demoteCandidates.empty());
    std::vector<FrameRef> hot;
    lru.collectHot(fastId, FrameCount{10}, hot);
    lru.collectHot(slowId, FrameCount{10}, hot);
    EXPECT_TRUE(hot.empty());
}

TEST_F(LruTest, MembershipFollowsBatchMigration)
{
    MigrationEngine migrator(machine, tiers, lru);
    std::vector<Frame *> frames;
    std::vector<FrameRef> batch;
    for (int i = 0; i < 16; ++i) {
        Frame *frame = alloc(fastId);
        if (i % 2 == 1) {
            lru.onAccessed(frame);
            lru.onAccessed(frame);
        }
        frames.push_back(frame);
        batch.emplace_back(frame);
    }
    ASSERT_EQ(lru.activeCount(fastId), 8u);
    ASSERT_EQ(lru.inactiveCount(fastId), 8u);

    // Demote the whole batch: membership moves tiers and demotion
    // strips active standing, so every frame lands inactive on slow.
    EXPECT_EQ(migrator.migrate(batch, slowId), 16u);
    EXPECT_EQ(lru.activeCount(fastId), 0u);
    EXPECT_EQ(lru.inactiveCount(fastId), 0u);
    EXPECT_EQ(lru.activeCount(slowId), 0u);
    EXPECT_EQ(lru.inactiveCount(slowId), 16u);
    for (Frame *frame : frames) {
        EXPECT_EQ(frame->tier, slowId);
        EXPECT_FALSE(frame->onActiveList);
    }

    // Promote half back: promotion preserves earned standing.
    std::vector<FrameRef> promote;
    for (int i = 0; i < 8; ++i) {
        lru.onAccessed(frames[static_cast<size_t>(i)]);
        lru.onAccessed(frames[static_cast<size_t>(i)]);
        promote.emplace_back(frames[static_cast<size_t>(i)]);
    }
    ASSERT_EQ(lru.activeCount(slowId), 8u);
    EXPECT_EQ(migrator.migrate(promote, fastId), 8u);
    EXPECT_EQ(lru.activeCount(fastId), 8u);
    EXPECT_EQ(lru.inactiveCount(fastId), 0u);
    EXPECT_EQ(lru.activeCount(slowId), 0u);
    EXPECT_EQ(lru.inactiveCount(slowId), 8u);
    for (Frame *frame : frames)
        tiers.free(frame);
    EXPECT_EQ(lru.activeCount(fastId) + lru.inactiveCount(fastId) +
                  lru.activeCount(slowId) + lru.inactiveCount(slowId),
              0u);
}

TEST_F(LruTest, MembershipSurvivesTierOffline)
{
    MigrationEngine migrator(machine, tiers, lru);
    std::vector<Frame *> frames;
    for (int i = 0; i < 12; ++i) {
        Frame *frame = alloc(slowId);
        if (i % 3 == 0) {
            lru.onAccessed(frame);
            lru.onAccessed(frame);
        }
        frames.push_back(frame);
    }
    ASSERT_EQ(lru.activeCount(slowId), 4u);
    ASSERT_EQ(lru.inactiveCount(slowId), 8u);

    // Offlining drains every frame to the remaining tier; no frame
    // may keep LRU membership on the dead tier.
    migrator.offlineTier(slowId);
    EXPECT_EQ(lru.activeCount(slowId), 0u);
    EXPECT_EQ(lru.inactiveCount(slowId), 0u);
    EXPECT_EQ(lru.activeCount(fastId) + lru.inactiveCount(fastId), 12u);
    for (Frame *frame : frames)
        EXPECT_EQ(frame->tier, fastId);
    for (Frame *frame : frames)
        tiers.free(frame);
    EXPECT_EQ(lru.activeCount(fastId) + lru.inactiveCount(fastId), 0u);
}

} // namespace
} // namespace kloc
