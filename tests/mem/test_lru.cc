/**
 * @file
 * LRU engine tests: two-list promotion dynamics, scan aging and
 * demotion candidates, two-scan promotion confirmation, migration
 * list handoff, and scan cost accounting.
 */

#include <gtest/gtest.h>

#include "mem/lru.hh"
#include "mem/migration.hh"
#include "sim/machine.hh"

namespace kloc {
namespace {

class LruTest : public ::testing::Test
{
  protected:
    LruTest() : machine(2, 1), tiers(machine), lru(machine, tiers)
    {
        TierSpec spec;
        spec.name = "fast";
        spec.capacity = 128 * kPageSize;
        spec.readLatency = Tick{80};
        spec.writeLatency = Tick{80};
        spec.readBandwidth = 10 * kGiB;
        spec.writeBandwidth = 10 * kGiB;
        fastId = tiers.addTier(spec);
        spec.name = "slow";
        spec.capacity = 128 * kPageSize;
        slowId = tiers.addTier(spec);
    }

    Frame *
    alloc(TierId tier)
    {
        Frame *frame = tiers.alloc(0, ObjClass::PageCache, true, {tier});
        EXPECT_NE(frame, nullptr);
        return frame;
    }

    Machine machine;
    TierManager tiers;
    LruEngine lru;
    TierId fastId = kInvalidTier;
    TierId slowId = kInvalidTier;
};

TEST_F(LruTest, FreshFramesStartInactive)
{
    Frame *frame = alloc(fastId);
    EXPECT_FALSE(frame->onActiveList);
    EXPECT_EQ(lru.inactiveCount(fastId), 1u);
    EXPECT_EQ(lru.activeCount(fastId), 0u);
    tiers.free(frame);
    EXPECT_EQ(lru.inactiveCount(fastId), 0u);
}

TEST_F(LruTest, SecondTouchActivates)
{
    Frame *frame = alloc(fastId);
    lru.onAccessed(frame);
    EXPECT_FALSE(frame->onActiveList) << "one touch must not activate";
    lru.onAccessed(frame);
    EXPECT_TRUE(frame->onActiveList);
    EXPECT_EQ(lru.activeCount(fastId), 1u);
    tiers.free(frame);
}

TEST_F(LruTest, ScanDeactivatesUnreferencedActives)
{
    Frame *frame = alloc(fastId);
    lru.onAccessed(frame);
    lru.onAccessed(frame);
    ASSERT_TRUE(frame->onActiveList);
    // First scan clears the referenced bit set by activation...
    lru.scanTier(fastId, FrameCount{100});
    // ...the next scan (no touches in between) deactivates.
    lru.scanTier(fastId, FrameCount{100});
    EXPECT_FALSE(frame->onActiveList);
    tiers.free(frame);
}

TEST_F(LruTest, ColdInactiveFramesAreDemoteCandidates)
{
    Frame *hot = alloc(fastId);
    Frame *cold = alloc(fastId);
    lru.onAccessed(hot);  // referenced while inactive
    ScanResult result = lru.scanTier(fastId, FrameCount{100});
    ASSERT_EQ(result.demoteCandidates.size(), 1u);
    EXPECT_EQ(result.demoteCandidates[0].get(), cold);
    tiers.free(hot);
    tiers.free(cold);
}

TEST_F(LruTest, ScanChargesPaperCalibratedCost)
{
    for (int i = 0; i < 100; ++i)
        alloc(fastId);
    const Tick before = machine.now();
    ScanResult result = lru.scanTier(fastId, FrameCount{100});
    EXPECT_EQ(result.scanned, 100u);
    // 2 us per page, divided by the background factor of 4.
    EXPECT_EQ(machine.now() - before,
              100 * LruEngine::kScanCostPerPage / 4);
    EXPECT_EQ(lru.totalScanned(), 100u);
}

TEST_F(LruTest, CollectHotRequiresTwoScans)
{
    Frame *frame = alloc(slowId);
    lru.onAccessed(frame);
    lru.onAccessed(frame);
    ASSERT_TRUE(frame->onActiveList);
    auto first = lru.collectHot(slowId, FrameCount{10});
    EXPECT_TRUE(first.empty()) << "promoted without confirmation scan";
    auto second = lru.collectHot(slowId, FrameCount{10});
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0].get(), frame);
    tiers.free(frame);
}

TEST_F(LruTest, MigrationMovesListMembership)
{
    Machine &m = machine;
    (void)m;
    MigrationEngine migrator(machine, tiers, lru);
    Frame *frame = alloc(fastId);
    lru.onAccessed(frame);
    lru.onAccessed(frame);
    ASSERT_TRUE(frame->onActiveList);
    ASSERT_TRUE(migrator.migrateOne(frame, slowId));
    EXPECT_EQ(frame->tier, slowId);
    EXPECT_EQ(lru.activeCount(fastId), 0u);
    // Demotion strips active standing (deactivate-on-demote).
    EXPECT_EQ(lru.inactiveCount(slowId), 1u);
    EXPECT_FALSE(frame->onActiveList);
    EXPECT_FALSE(frame->referenced);
    tiers.free(frame);
}

TEST_F(LruTest, DeactivateStripsStanding)
{
    Frame *frame = alloc(fastId);
    lru.onAccessed(frame);
    lru.onAccessed(frame);
    ASSERT_TRUE(frame->onActiveList);
    lru.deactivate(frame);
    EXPECT_FALSE(frame->onActiveList);
    EXPECT_FALSE(frame->referenced);
    EXPECT_EQ(lru.inactiveCount(fastId), 1u);
    tiers.free(frame);
}

TEST_F(LruTest, ScanBudgetLimitsWork)
{
    for (int i = 0; i < 50; ++i)
        alloc(fastId);
    ScanResult result = lru.scanTier(fastId, FrameCount{10});
    EXPECT_EQ(result.scanned, 10u);
    EXPECT_LE(result.demoteCandidates.size(), 10u);
}

} // namespace
} // namespace kloc
