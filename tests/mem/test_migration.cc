/**
 * @file
 * Migration engine tests: batch moves, direction accounting
 * (Fig. 5b's demote/promote split), stale-reference skipping,
 * relocatability failures, and parallelism cost scaling.
 */

#include <gtest/gtest.h>

#include "mem/lru.hh"
#include "mem/migration.hh"
#include "sim/machine.hh"
#include "trace/invariants.hh"

namespace kloc {
namespace {

class MigrationTest : public ::testing::Test
{
  protected:
    MigrationTest()
        : machine(2, 1),
          tiers(machine),
          lru(machine, tiers),
          migrator(machine, tiers, lru)
    {
        TierSpec spec;
        spec.name = "fast";
        spec.capacity = 64 * kPageSize;
        spec.readLatency = Tick{80};
        spec.writeLatency = Tick{80};
        spec.readBandwidth = 10 * kGiB;
        spec.writeBandwidth = 10 * kGiB;
        fastId = tiers.addTier(spec);
        spec.name = "slow";
        spec.capacity = 64 * kPageSize;
        spec.readBandwidth /= 4;
        spec.writeBandwidth /= 4;
        slowId = tiers.addTier(spec);
    }

    Machine machine;
    TierManager tiers;
    LruEngine lru;
    MigrationEngine migrator;
    TierId fastId = kInvalidTier;
    TierId slowId = kInvalidTier;
};

TEST_F(MigrationTest, BatchMigrateMovesAllValid)
{
    std::vector<FrameRef> batch;
    std::vector<Frame *> frames;
    for (int i = 0; i < 8; ++i) {
        Frame *frame =
            tiers.alloc(0, ObjClass::PageCache, true, {fastId});
        frames.push_back(frame);
        batch.emplace_back(frame);
    }
    EXPECT_EQ(migrator.migrate(batch, slowId), 8u);
    for (Frame *frame : frames)
        EXPECT_EQ(frame->tier, slowId);
    EXPECT_EQ(migrator.stats().demotedPages, 8u);
    EXPECT_EQ(migrator.stats().promotedPages, 0u);
    EXPECT_EQ(migrator.stats().migratedPagesByClass[static_cast<unsigned>(
                  ObjClass::PageCache)],
              8u);
    for (Frame *frame : frames)
        tiers.free(frame);
}

TEST_F(MigrationTest, StaleRefsSkipped)
{
    Frame *frame = tiers.alloc(0, ObjClass::App, true, {fastId});
    std::vector<FrameRef> batch;
    batch.emplace_back(frame);
    tiers.free(frame);
    EXPECT_EQ(migrator.migrate(batch, slowId), 0u);
    EXPECT_EQ(migrator.stats().failedStale, 1u);
}

TEST_F(MigrationTest, NonRelocatableCounted)
{
    Frame *slab = tiers.alloc(0, ObjClass::FsSlab, false, {fastId});
    std::vector<FrameRef> batch;
    batch.emplace_back(slab);
    EXPECT_EQ(migrator.migrate(batch, slowId), 0u);
    EXPECT_EQ(migrator.stats().failedNotRelocatable, 1u);
    EXPECT_EQ(slab->tier, fastId);
    tiers.free(slab);
}

TEST_F(MigrationTest, DestinationFullCounted)
{
    // Fill the slow tier completely.
    std::vector<Frame *> fillers;
    while (Frame *f = tiers.alloc(0, ObjClass::App, true, {slowId}))
        fillers.push_back(f);
    Frame *frame = tiers.alloc(0, ObjClass::App, true, {fastId});
    std::vector<FrameRef> batch;
    batch.emplace_back(frame);
    EXPECT_EQ(migrator.migrate(batch, slowId), 0u);
    EXPECT_EQ(migrator.stats().failedNoSpace, 1u);
    tiers.free(frame);
    for (Frame *f : fillers)
        tiers.free(f);
}

TEST_F(MigrationTest, PromotionCountsOppositeDirection)
{
    Frame *frame = tiers.alloc(0, ObjClass::PageCache, true, {slowId});
    ASSERT_TRUE(migrator.migrateOne(frame, fastId));
    EXPECT_EQ(migrator.stats().promotedPages, 1u);
    EXPECT_EQ(migrator.stats().demotedPages, 0u);
    tiers.free(frame);
}

TEST_F(MigrationTest, ParallelismReducesChargedTime)
{
    auto run_with = [&](unsigned width) {
        Machine m(2, 1);
        TierManager t(m);
        LruEngine l(m, t);
        MigrationEngine engine(m, t, l);
        TierSpec spec;
        spec.name = "a";
        spec.capacity = 64 * kPageSize;
        spec.readLatency = Tick{80};
        spec.writeLatency = Tick{80};
        spec.readBandwidth = kGiB;
        spec.writeBandwidth = kGiB;
        const TierId a = t.addTier(spec);
        spec.name = "b";
        const TierId b = t.addTier(spec);
        engine.setParallelism(width);
        std::vector<FrameRef> batch;
        std::vector<Frame *> frames;
        for (int i = 0; i < 32; ++i) {
            frames.push_back(t.alloc(0, ObjClass::App, true, {a}));
            batch.emplace_back(frames.back());
        }
        const Tick before = m.now();
        engine.migrate(batch, b);
        const Tick cost = m.now() - before;
        for (Frame *f : frames)
            t.free(f);
        return cost;
    };
    const Tick serial = run_with(1);
    const Tick parallel = run_with(8);
    EXPECT_GT(serial, parallel * 6);
}

TEST_F(MigrationTest, DemotionOfActiveFrameStripsLruStanding)
{
    machine.tracer().setEnabled(true);
    InvariantChecker checker(machine.tracer(), /*strict=*/true);

    Frame *frame = tiers.alloc(0, ObjClass::PageCache, true, {fastId});
    lru.onAccessed(frame);
    lru.onAccessed(frame);  // second touch promotes to the active list
    ASSERT_TRUE(frame->onActiveList);
    ASSERT_EQ(lru.activeCount(fastId), 1u);

    ASSERT_TRUE(migrator.migrateOne(frame, slowId));
    // The demoted frame lands on the slow tier's inactive list: it
    // must re-earn active standing through genuine reuse.
    EXPECT_EQ(frame->tier, slowId);
    EXPECT_FALSE(frame->onActiveList);
    EXPECT_EQ(lru.activeCount(fastId), 0u);
    EXPECT_EQ(lru.inactiveCount(fastId), 0u);
    EXPECT_EQ(lru.activeCount(slowId), 0u);
    EXPECT_EQ(lru.inactiveCount(slowId), 1u);

    tiers.free(frame);
    EXPECT_TRUE(checker.clean()) << checker.report();
    EXPECT_GT(checker.eventsChecked(), 0u);
}

TEST_F(MigrationTest, PromotionOfActiveFramePreservesLruStanding)
{
    machine.tracer().setEnabled(true);
    InvariantChecker checker(machine.tracer(), /*strict=*/true);

    Frame *frame = tiers.alloc(0, ObjClass::PageCache, true, {slowId});
    lru.onAccessed(frame);
    lru.onAccessed(frame);
    ASSERT_TRUE(frame->onActiveList);

    ASSERT_TRUE(migrator.migrateOne(frame, fastId));
    // Promotion keeps the earned standing on the destination tier.
    EXPECT_EQ(frame->tier, fastId);
    EXPECT_TRUE(frame->onActiveList);
    EXPECT_EQ(lru.activeCount(fastId), 1u);
    EXPECT_EQ(lru.activeCount(slowId), 0u);
    EXPECT_EQ(lru.inactiveCount(slowId), 0u);

    lru.deactivate(frame);  // strip standing so free is list-clean
    EXPECT_EQ(lru.inactiveCount(fastId), 1u);
    tiers.free(frame);
    EXPECT_TRUE(checker.clean()) << checker.report();
}

TEST_F(MigrationTest, ResetStatsClears)
{
    Frame *frame = tiers.alloc(0, ObjClass::App, true, {fastId});
    migrator.migrateOne(frame, slowId);
    EXPECT_GT(migrator.stats().migratedPages, 0u);
    migrator.resetStats();
    EXPECT_EQ(migrator.stats().migratedPages, 0u);
    EXPECT_EQ(migrator.stats().attempts, 0u);
    tiers.free(frame);
}

} // namespace
} // namespace kloc
