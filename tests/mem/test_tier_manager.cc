/**
 * @file
 * TierManager tests: preference-order allocation with fallback,
 * residency/cumulative accounting, lifetime histograms, migration
 * bookkeeping (identity stability, damping), FrameRef generations,
 * and observers.
 */

#include <gtest/gtest.h>

#include "mem/tier_manager.hh"
#include "sim/machine.hh"

namespace kloc {
namespace {

class TierManagerTest : public ::testing::Test
{
  protected:
    TierManagerTest() : machine(4, 1), tiers(machine)
    {
        TierSpec fast;
        fast.name = "fast";
        fast.capacity = 64 * kPageSize;
        fast.readLatency = Tick{80};
        fast.writeLatency = Tick{80};
        fast.readBandwidth = 10 * kGiB;
        fast.writeBandwidth = 10 * kGiB;
        fastId = tiers.addTier(fast);

        TierSpec slow = fast;
        slow.name = "slow";
        slow.capacity = 256 * kPageSize;
        slowId = tiers.addTier(slow);
    }

    Machine machine;
    TierManager tiers;
    TierId fastId = kInvalidTier;
    TierId slowId = kInvalidTier;
};

TEST_F(TierManagerTest, AllocHonoursPreferenceOrder)
{
    Frame *frame = tiers.alloc(0, ObjClass::App, true, {fastId, slowId});
    ASSERT_NE(frame, nullptr);
    EXPECT_EQ(frame->tier, fastId);
    EXPECT_EQ(frame->objClass, ObjClass::App);
    EXPECT_TRUE(frame->relocatable);
    tiers.free(frame);
}

TEST_F(TierManagerTest, FallbackWhenPreferredFull)
{
    std::vector<Frame *> frames;
    for (int i = 0; i < 64; ++i) {
        Frame *frame =
            tiers.alloc(0, ObjClass::PageCache, true, {fastId, slowId});
        ASSERT_NE(frame, nullptr);
        EXPECT_EQ(frame->tier, fastId);
        frames.push_back(frame);
    }
    Frame *spilled =
        tiers.alloc(0, ObjClass::PageCache, true, {fastId, slowId});
    ASSERT_NE(spilled, nullptr);
    EXPECT_EQ(spilled->tier, slowId);
    tiers.free(spilled);
    for (Frame *frame : frames)
        tiers.free(frame);
}

TEST_F(TierManagerTest, ExhaustionReturnsNull)
{
    std::vector<Frame *> frames;
    while (Frame *f = tiers.alloc(0, ObjClass::App, true,
                                  {fastId, slowId})) {
        frames.push_back(f);
    }
    EXPECT_EQ(frames.size(), 64u + 256u);
    EXPECT_EQ(tiers.alloc(0, ObjClass::App, true, {fastId, slowId}),
              nullptr);
    for (Frame *frame : frames)
        tiers.free(frame);
    EXPECT_EQ(tiers.liveFrames(), 0u);
}

TEST_F(TierManagerTest, ResidencyAndCumulativeAccounting)
{
    Frame *a = tiers.alloc(0, ObjClass::Journal, true, {fastId});
    Frame *b = tiers.alloc(2, ObjClass::Journal, true, {fastId});
    EXPECT_EQ(tiers.tier(fastId).residentPages(ObjClass::Journal), 5u);
    EXPECT_EQ(tiers.tier(fastId).cumulativeAllocPages(ObjClass::Journal),
              5u);
    EXPECT_EQ(tiers.cumulativeAllocPages(ObjClass::Journal), 5u);
    tiers.free(a);
    EXPECT_EQ(tiers.tier(fastId).residentPages(ObjClass::Journal), 4u);
    // Cumulative never decreases.
    EXPECT_EQ(tiers.cumulativeAllocPages(ObjClass::Journal), 5u);
    tiers.free(b);
}

TEST_F(TierManagerTest, LifetimeHistogramSampled)
{
    Frame *frame = tiers.alloc(0, ObjClass::FsSlab, true, {fastId});
    machine.charge(Tick{1000});
    tiers.free(frame);
    const Histogram &hist = tiers.lifetimeHist(ObjClass::FsSlab);
    EXPECT_EQ(hist.dist().count(), 1u);
    EXPECT_DOUBLE_EQ(hist.dist().mean(), 1000.0);
}

TEST_F(TierManagerTest, MigratePreservesFrameIdentity)
{
    Frame *frame = tiers.alloc(0, ObjClass::PageCache, true, {fastId});
    Frame *before = frame;
    ASSERT_TRUE(tiers.migrate(frame, slowId));
    EXPECT_EQ(frame, before);
    EXPECT_EQ(frame->tier, slowId);
    EXPECT_EQ(frame->migrateCount, 1);
    EXPECT_EQ(tiers.tier(fastId).residentPages(ObjClass::PageCache), 0u);
    EXPECT_EQ(tiers.tier(slowId).residentPages(ObjClass::PageCache), 1u);
    // Migration arrivals do not count as new allocations.
    EXPECT_EQ(tiers.tier(slowId).cumulativeAllocPages(ObjClass::PageCache),
              0u);
    tiers.free(frame);
}

TEST_F(TierManagerTest, MigrateRefusals)
{
    Frame *fixed = tiers.alloc(0, ObjClass::FsSlab, false, {fastId});
    EXPECT_FALSE(tiers.migrate(fixed, slowId)) << "non-relocatable moved";

    Frame *pinned = tiers.alloc(0, ObjClass::App, true, {fastId});
    pinned->pinCount = 1;
    EXPECT_FALSE(tiers.migrate(pinned, slowId)) << "pinned frame moved";
    pinned->pinCount = 0;

    Frame *same = tiers.alloc(0, ObjClass::App, true, {fastId});
    EXPECT_FALSE(tiers.migrate(same, fastId)) << "same-tier move";

    tiers.free(fixed);
    tiers.free(pinned);
    tiers.free(same);
}

TEST_F(TierManagerTest, PingPongDampingRetainsInFast)
{
    Frame *frame = tiers.alloc(0, ObjClass::PageCache, true, {fastId});
    // Bounce until the retain threshold trips.
    for (int i = 0; i < TierManager::kRetainThreshold / 2; ++i) {
        ASSERT_TRUE(tiers.migrate(frame, slowId));
        ASSERT_TRUE(tiers.migrate(frame, fastId));
    }
    EXPECT_GE(frame->migrateCount, TierManager::kRetainThreshold);
    // Demotion now refused; promotion would still be allowed.
    EXPECT_FALSE(tiers.migrate(frame, slowId));
    EXPECT_EQ(frame->tier, fastId);
    tiers.free(frame);
}

TEST_F(TierManagerTest, FrameRefDetectsFreeAndRecycle)
{
    Frame *frame = tiers.alloc(0, ObjClass::App, true, {fastId});
    FrameRef ref(frame);
    EXPECT_TRUE(ref.valid());
    tiers.free(frame);
    EXPECT_FALSE(ref.valid()) << "ref to freed frame still valid";
    // Recycle the slot: the generation must differ.
    Frame *recycled = tiers.alloc(0, ObjClass::App, true, {fastId});
    if (recycled == frame) {
        EXPECT_FALSE(ref.valid()) << "ref to recycled frame still valid";
    }
    tiers.free(recycled);
}

TEST_F(TierManagerTest, ObserversFire)
{
    int allocs = 0, frees = 0;
    tiers.addAllocObserver(
        [](void *ctx, Frame *) { ++*static_cast<int *>(ctx); }, &allocs);
    tiers.addFreeObserver(
        [](void *ctx, Frame *) { ++*static_cast<int *>(ctx); }, &frees);
    Frame *frame = tiers.alloc(0, ObjClass::App, true, {fastId});
    EXPECT_EQ(allocs, 1);
    EXPECT_EQ(frees, 0);
    tiers.free(frame);
    EXPECT_EQ(frees, 1);
}

} // namespace
} // namespace kloc
