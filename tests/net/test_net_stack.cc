/**
 * @file
 * Network stack tests: socket lifecycle (sockets are files with
 * knodes), ingress/egress byte accounting, skbuff tracking, the
 * early-vs-late demux distinction, and rx-ring reuse.
 */

#include <gtest/gtest.h>

#include "mem/placement.hh"
#include "net/net_stack.hh"
#include "sim/machine.hh"

namespace kloc {
namespace {

class NetTest : public ::testing::Test
{
  protected:
    NetTest()
        : machine(4, 1), tiers(machine), lru(machine, tiers),
          mem(machine, lru), migrator(machine, tiers, lru),
          heap(mem, tiers), kloc(heap, migrator)
    {
        TierSpec spec;
        spec.name = "fast";
        spec.capacity = 2048 * kPageSize;
        spec.readLatency = Tick{80};
        spec.writeLatency = Tick{80};
        spec.readBandwidth = 10 * kGiB;
        spec.writeBandwidth = 10 * kGiB;
        fastId = tiers.addTier(spec);
        spec.name = "slow";
        spec.capacity = 2048 * kPageSize;
        slowId = tiers.addTier(spec);
        placement = std::make_unique<StaticPlacement>(
            TierPreference{fastId, slowId},
            TierPreference{fastId, slowId});
        heap.setPolicy(placement.get());
        heap.setKlocInterface(true);
        kloc.setEnabled(true);
        kloc.setTierOrder({fastId, slowId});
    }

    NetworkStack
    makeStack(bool early_demux)
    {
        NetworkStack::Config config;
        config.klocEarlyDemux = early_demux;
        return NetworkStack(heap, &kloc, config);
    }

    Machine machine;
    TierManager tiers;
    LruEngine lru;
    MemAccessor mem;
    MigrationEngine migrator;
    KernelHeap heap;
    KlocManager kloc;
    std::unique_ptr<StaticPlacement> placement;
    TierId fastId = kInvalidTier;
    TierId slowId = kInvalidTier;
};

TEST_F(NetTest, SocketsAreFilesWithKnodes)
{
    auto net = makeStack(false);
    const int sd = net.socket();
    EXPECT_GE(sd, 3);
    EXPECT_EQ(net.liveSockets(), 1u);
    Knode *knode = net.knodeOf(sd);
    ASSERT_NE(knode, nullptr);
    EXPECT_TRUE(knode->inuse);
    // The sock object and socket inode are tracked.
    EXPECT_GE(knode->objectCount(), 2u);
    net.closeSocket(sd);
    EXPECT_EQ(net.liveSockets(), 0u);
    EXPECT_EQ(kloc.knodeCount(), 0u);
}

TEST_F(NetTest, DeliverThenRecvRoundTripsBytes)
{
    auto net = makeStack(false);
    const int sd = net.socket();
    net.deliver(sd, Bytes{10000});
    EXPECT_EQ(net.pendingBytes(sd), 10000u);
    EXPECT_EQ(net.stats().packetsDelivered, 3u);  // ceil(10000/4096)
    const Bytes got = net.recv(sd, Bytes{1ULL << 20});
    EXPECT_EQ(got, 10000u);
    EXPECT_EQ(net.pendingBytes(sd), 0u);
    EXPECT_EQ(net.stats().packetsReceived, 3u);
    net.closeSocket(sd);
}

TEST_F(NetTest, RecvRespectsMaxLength)
{
    auto net = makeStack(false);
    const int sd = net.socket();
    net.deliver(sd, 3 * NetworkStack::kPacketBytes);
    const Bytes got = net.recv(sd, NetworkStack::kPacketBytes);
    EXPECT_EQ(got, NetworkStack::kPacketBytes);
    EXPECT_EQ(net.pendingBytes(sd), 2 * NetworkStack::kPacketBytes);
    net.closeSocket(sd);
}

TEST_F(NetTest, SendChargesAndCounts)
{
    auto net = makeStack(false);
    const int sd = net.socket();
    const Tick before = machine.now();
    EXPECT_EQ(net.send(sd, Bytes{9000}), 9000u);
    EXPECT_GT(machine.now(), before);
    EXPECT_EQ(net.stats().packetsSent, 3u);
    // Egress skbuffs are freed on tx completion: lifetimes recorded.
    EXPECT_GT(heap.objLifetimeHist(KobjKind::SkbuffHead).dist().count(),
              0u);
    net.closeSocket(sd);
}

TEST_F(NetTest, LateDemuxTracksAtTcpLayer)
{
    auto net = makeStack(false);
    const int sd = net.socket();
    net.deliver(sd, NetworkStack::kPacketBytes);
    EXPECT_EQ(net.stats().lateDemuxPackets, 1u);
    EXPECT_EQ(net.stats().earlyDemuxPackets, 0u);
    // The queued skb is associated with the socket's knode anyway
    // (just later, in the TCP layer).
    Knode *knode = net.knodeOf(sd);
    EXPECT_GT(knode->objectCount(), 2u);
    net.closeSocket(sd);
}

TEST_F(NetTest, EarlyDemuxCheaperPerPacket)
{
    auto late = makeStack(false);
    auto early = makeStack(true);
    const int sd_late = late.socket();
    const int sd_early = early.socket();

    const Tick t0 = machine.now();
    late.deliver(sd_late, 64 * NetworkStack::kPacketBytes);
    const Tick late_cost = machine.now() - t0;

    const Tick t1 = machine.now();
    early.deliver(sd_early, 64 * NetworkStack::kPacketBytes);
    const Tick early_cost = machine.now() - t1;

    EXPECT_LT(early_cost, late_cost)
        << "early demux should elide TCP-layer socket lookups";
    EXPECT_EQ(early.stats().earlyDemuxPackets, 64u);
    late.closeSocket(sd_late);
    early.closeSocket(sd_early);
}

TEST_F(NetTest, CloseDropsQueuedBuffers)
{
    auto net = makeStack(false);
    const int sd = net.socket();
    net.deliver(sd, 8 * NetworkStack::kPacketBytes);
    const uint64_t live_before = tiers.liveFrames();
    net.closeSocket(sd);
    EXPECT_LT(tiers.liveFrames(), live_before)
        << "queued skbuffs must be freed on close";
}

TEST_F(NetTest, UnknownSocketIsNoop)
{
    auto net = makeStack(false);
    net.deliver(999, Bytes{1000});
    EXPECT_EQ(net.recv(999, Bytes{1000}), 0u);
    EXPECT_EQ(net.send(999, Bytes{1000}), 0u);
    EXPECT_EQ(net.pendingBytes(999), 0u);
}

TEST_F(NetTest, RxRingIsBounded)
{
    NetworkStack::Config config;
    config.rxRingSize = 8;
    NetworkStack net(heap, &kloc, config);
    const int sd = net.socket();
    const uint64_t sock_pages_before =
        tiers.tier(fastId).residentPages(ObjClass::SockBuf) +
        tiers.tier(slowId).residentPages(ObjClass::SockBuf);
    // Push far more packets than the ring size; ring pages recycle.
    for (int i = 0; i < 10; ++i) {
        net.deliver(sd, 4 * NetworkStack::kPacketBytes);
        net.recv(sd, Bytes{~0ULL});
    }
    const uint64_t sock_pages_after =
        tiers.tier(fastId).residentPages(ObjClass::SockBuf) +
        tiers.tier(slowId).residentPages(ObjClass::SockBuf);
    // Only the 8 ring pages (plus transient slack) persist.
    EXPECT_LE(sock_pages_after, sock_pages_before + 8 + 4);
    net.closeSocket(sd);
}

TEST_F(NetTest, KlocDisabledStillWorks)
{
    kloc.setEnabled(false);
    heap.setKlocInterface(false);
    NetworkStack net(heap, nullptr, NetworkStack::Config{});
    const int sd = net.socket();
    net.deliver(sd, Bytes{5000});
    EXPECT_EQ(net.recv(sd, Bytes{~0ULL}), 5000u);
    EXPECT_EQ(net.knodeOf(sd), nullptr);
    net.closeSocket(sd);
}

} // namespace
} // namespace kloc
