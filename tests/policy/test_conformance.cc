/**
 * @file
 * Policy conformance suite: the contract every registered two-tier
 * policy must honour, run as one parameterized fixture over the six
 * dynamic policies (Naive, AutoNUMA, KLOCs, Nomad, Jenga,
 * KLOC+Nomad). A new policy registered in policy/registry.cc is
 * swept automatically — see docs/POLICIES.md.
 *
 * The contract:
 *  - install() exposes valid, non-empty tier preferences;
 *  - no page ever arrives on an offline tier, even while the policy
 *    keeps scanning through an offline/online storm (checker rule);
 *  - pins balance and the trace stays invariant-clean across aborted
 *    transactional copies under injected migration faults;
 *  - the serialized trace is byte-identical across repeat runs and
 *    across RunPool worker counts (the KLOC_JOBS axis);
 *  - promotion traffic under an adversarial thrash pattern is
 *    bounded by the policy's scan rate — no runaway migration.
 *
 * Scenario closures are shared-nothing and gtest-free so they can
 * run on RunPool workers; the main thread asserts.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "base/run_pool.hh"
#include "core/kloc_manager.hh"
#include "fault/fault.hh"
#include "kobj/kernel_heap.hh"
#include "mem/placement.hh"
#include "policy/registry.hh"
#include "sim/machine.hh"
#include "trace/invariants.hh"

namespace kloc {
namespace {

/**
 * Raw two-tier stack (no TwoTierPlatform, no filesystem) hosting one
 * registry-built policy, with tracing and the strict checker armed
 * before the first allocation.
 */
struct PolicyStack
{
    explicit PolicyStack(const std::string &policy_name)
        : machine(4, 1), tiers(machine), lru(machine, tiers),
          mem(machine, lru), migrator(machine, tiers, lru),
          heap(mem, tiers), kloc(heap, migrator)
    {
        TierSpec spec;
        spec.name = "fast";
        spec.capacity = 512 * kPageSize;
        spec.readLatency = Tick{80};
        spec.writeLatency = Tick{80};
        spec.readBandwidth = 10 * kGiB;
        spec.writeBandwidth = 10 * kGiB;
        fast = tiers.addTier(spec);
        spec.name = "slow";
        spec.capacity = 1024 * kPageSize;
        spec.readLatency = Tick{300};
        spec.writeLatency = Tick{300};
        spec.readBandwidth = 2 * kGiB;
        spec.writeBandwidth = 2 * kGiB;
        slow = tiers.addTier(spec);

        machine.tracer().setEnabled(true);
        checker = std::make_unique<InvariantChecker>(machine.tracer(),
                                                     /*strict=*/true);

        policy = makePolicy(policy_name,
                            PolicyContext{heap, lru, migrator, &kloc,
                                          fast, slow});
    }

    Machine machine;
    TierManager tiers;
    LruEngine lru;
    MemAccessor mem;
    MigrationEngine migrator;
    KernelHeap heap;
    KlocManager kloc;
    std::unique_ptr<InvariantChecker> checker;
    std::unique_ptr<Policy> policy;
    TierId fast = kInvalidTier;
    TierId slow = kInvalidTier;
};

/** Fault/storm knobs for one conformance scenario run. */
struct ScenarioOptions
{
    uint64_t seed = 1;
    /** Arm migration_no_space so transactional copies abort. */
    bool migrationFaults = false;
    /** Offline/online the slow tier mid-run. */
    bool offlineStorm = false;
    int steps = 240;
};

/** Everything a scenario reports back to the asserting thread. */
struct ScenarioResult
{
    std::vector<std::string> errors;
    std::string trace;
    MigrationStats migration;
    uint64_t outstandingPins = 0;
    uint64_t eventsChecked = 0;
    Tick elapsed{};

    bool ok() const { return errors.empty(); }

    std::string
    summary() const
    {
        std::string out;
        for (const std::string &error : errors)
            out += error + "\n";
        return out;
    }
};

/**
 * Drive @p policy_name through the shared adversarial scenario: app
 * pages overflowing the fast tier, a sliding access window that
 * oscillates around fast capacity, and idle time so scan ticks fire.
 * Shared-nothing and gtest-free (RunPool-safe).
 */
ScenarioResult
runScenario(const std::string &policy_name, const ScenarioOptions &opts)
{
    ScenarioResult result;
    PolicyStack s(policy_name);
    auto check = [&result](bool ok, const std::string &what) {
        if (!ok)
            result.errors.push_back(what);
        return ok;
    };

    if (!check(s.policy != nullptr, "registry failed to build policy"))
        return result;
    s.policy->install();
    if (!s.policy->usesKloc()) {
        s.kloc.setEnabled(false);
        s.heap.setKlocInterface(false);
    }
    s.policy->start();

    if (opts.migrationFaults || opts.offlineStorm) {
        std::string spec_text =
            "seed " + std::to_string(opts.seed) + "\n";
        if (opts.migrationFaults)
            spec_text += "migration_no_space prob 0.3\n";
        if (opts.offlineStorm)
            spec_text += "tier_offline at 300000000 tier 1\n"
                         "tier_online at 700000000 tier 1\n";
        FaultSpec fspec;
        std::string err;
        if (!check(FaultSpec::parse(spec_text, fspec, &err),
                   "FaultSpec::parse failed: " + err))
            return result;
        s.machine.faults().configure(fspec);
        s.migrator.scheduleTierEvents();
    }

    // 700 app pages: the fast tier (512 pages) cannot hold them.
    std::vector<Frame *> pages;
    for (int i = 0; i < 700; ++i) {
        Frame *frame = s.heap.allocAppPage();
        if (!check(frame != nullptr, "app page allocation failed"))
            return result;
        pages.push_back(frame);
    }

    const Tick start = s.machine.now();
    for (int step = 0; step < opts.steps; ++step) {
        s.machine.setCurrentCpu(static_cast<unsigned>(step % 4));
        // Sliding window, size oscillating around fast capacity.
        const auto ustep = static_cast<uint64_t>(step);
        const uint64_t ws = 384 + (ustep % 64) * 8;     // 384..888
        const uint64_t base = (ustep * 16) % pages.size();
        for (uint64_t j = 0; j < 96; ++j) {
            const uint64_t pos = (ustep * 96 + j) % ws;
            Frame *frame = pages[(base + pos) % pages.size()];
            s.mem.touch(frame, 4 * kKiB,
                        pos % 5 == 0 ? AccessType::Write
                                     : AccessType::Read);
        }
        // Idle time lets scan ticks and tier events run.
        s.machine.charge(5 * kMillisecond);
    }
    result.elapsed = s.machine.now() - start;

    if (opts.offlineStorm)
        check(s.tiers.tier(s.slow).online(),
              "slow tier never came back online");

    s.machine.faults().clear();
    s.policy->stop();
    for (Frame *frame : pages)
        s.heap.freeAppPage(frame);
    pages.clear();

    result.migration = s.migrator.stats();
    result.outstandingPins = s.checker->outstandingPins();
    result.eventsChecked = s.checker->eventsChecked();
    check(s.tiers.liveFrames() <= 16 * KmemCache::kEmptyRetention,
          "frames leaked past slab empty-pool retention");
    if (!s.checker->clean())
        result.errors.push_back("invariant violations:\n" +
                                s.checker->report());
    result.trace = s.machine.tracer().serialize();
    s.machine.tracer().setEnabled(false);
    return result;
}

class PolicyConformance
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(PolicyConformance, InstallExposesValidPreferences)
{
    PolicyStack s(GetParam());
    ASSERT_NE(s.policy, nullptr);
    s.policy->install();
    EXPECT_STREQ(s.policy->name(), GetParam().c_str());

    const auto app = s.policy->appPreference();
    ASSERT_FALSE(app.empty());
    for (const TierId tier : app)
        EXPECT_TRUE(tier == s.fast || tier == s.slow);
    for (const bool active : {false, true}) {
        const auto kernel =
            s.policy->kernelPreference(ObjClass::PageCache, active);
        ASSERT_FALSE(kernel.empty());
        for (const TierId tier : kernel)
            EXPECT_TRUE(tier == s.fast || tier == s.slow);
    }
    s.policy->stop();
}

TEST_P(PolicyConformance, NoMigrationToOfflineTiers)
{
    ScenarioOptions opts;
    opts.offlineStorm = true;
    const ScenarioResult result = runScenario(GetParam(), opts);
    EXPECT_TRUE(result.ok()) << result.summary();
    EXPECT_GT(result.eventsChecked, 0u);
}

TEST_P(PolicyConformance, PinBalanceAcrossAbortedTransactionalCopies)
{
    ScenarioOptions opts;
    opts.migrationFaults = true;
    const ScenarioResult result = runScenario(GetParam(), opts);
    EXPECT_TRUE(result.ok()) << result.summary();
    EXPECT_EQ(result.outstandingPins, 0u);
    // Every opened transactional window must have closed.
    const MigrationStats &mig = result.migration;
    EXPECT_EQ(mig.txnBegins, mig.txnCommits + mig.txnAbortedWrite +
                                 mig.txnAbortedNoSpace +
                                 mig.txnAbortedBlocked);
    // And every attempt resolved into exactly one outcome counter —
    // the abandon path must not drop or double-book attempts.
    EXPECT_EQ(mig.attempts, mig.resolvedAttempts());
}

TEST_P(PolicyConformance, DeterministicTraceAcrossSeedsAndJobs)
{
    const std::string policy = GetParam();
    const std::vector<uint64_t> seeds = {1, 2, 3};

    // Serial reference pass (the KLOC_JOBS=1 shape)...
    std::vector<std::string> serial;
    for (const uint64_t seed : seeds) {
        ScenarioOptions opts;
        opts.seed = seed;
        opts.migrationFaults = true;
        const ScenarioResult result = runScenario(policy, opts);
        ASSERT_TRUE(result.ok()) << result.summary();
        serial.push_back(result.trace);
    }

    // ...must match a pooled pass with 4 workers byte for byte.
    RunPool pool(4);
    const auto pooled = runIndexed<ScenarioResult>(
        pool, seeds.size(), [&](size_t i) {
            ScenarioOptions opts;
            opts.seed = seeds[i];
            opts.migrationFaults = true;
            return runScenario(policy, opts);
        });
    for (size_t i = 0; i < seeds.size(); ++i) {
        ASSERT_TRUE(pooled[i].ok()) << pooled[i].summary();
        EXPECT_EQ(serial[i], pooled[i].trace)
            << "seed " << seeds[i]
            << ": trace diverged between serial and pooled runs";
        EXPECT_FALSE(serial[i].empty());
    }
    // Different seeds with faults armed actually diverge as soon as
    // the policy attempts any migration (the armed fault site); Naive
    // never migrates, so its trace is legitimately seed-invariant.
    if (pooled[0].migration.attempts > 0)
        EXPECT_NE(serial[0], serial[1]);
}

TEST_P(PolicyConformance, BoundedPromotionUnderThrash)
{
    const ScenarioResult result = runScenario(GetParam(), {});
    EXPECT_TRUE(result.ok()) << result.summary();

    // A policy may promote at most one batch per scan tick; the
    // loosest registered batch is 8192 pages per 100 ms tick.
    const uint64_t max_ticks =
        static_cast<uint64_t>(result.elapsed /
                              (100 * kMillisecond)) + 2;
    EXPECT_LE(result.migration.promotedPages, max_ticks * 8192)
        << "promotion rate exceeds one max-size batch per scan tick";
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyConformance,
    ::testing::ValuesIn(conformancePolicyNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '+')
                c = 'p';
        }
        return name;
    });

} // namespace
} // namespace kloc
