/**
 * @file
 * Nomad shadow-copy mechanics: transactional promotion, write-recency
 * aborts, shadow-served free demotion, budget fallback, and offline
 * reclamation — plus a golden trace of the thrash pattern under
 * NomadStrategy (byte-identical across runs and RunPool worker
 * counts) and a seeded fuzz interleaving transactional copies with
 * fault injection.
 *
 * Regenerate the golden file after an intentional change with:
 *
 *   KLOC_UPDATE_GOLDEN=1 ./test_policy --gtest_filter='NomadGolden*'
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "base/run_pool.hh"
#include "core/kloc_manager.hh"
#include "fault/fault.hh"
#include "kobj/kernel_heap.hh"
#include "mem/placement.hh"
#include "policy/nomad.hh"
#include "sim/machine.hh"
#include "trace/invariants.hh"

#ifndef KLOC_TRACE_GOLDEN_DIR
#error "KLOC_TRACE_GOLDEN_DIR must point at tests/trace/golden"
#endif

namespace kloc {
namespace {

/**
 * Minimal two-tier stack for driving the migration engine's shadow
 * paths directly. App pages place slow-first so promotions have
 * something to lift.
 */
struct ShadowStack
{
    ShadowStack()
        : machine(2, 1), tiers(machine), lru(machine, tiers),
          mem(machine, lru), migrator(machine, tiers, lru),
          heap(mem, tiers), kloc(heap, migrator)
    {
        TierSpec spec;
        spec.name = "fast";
        spec.capacity = 256 * kPageSize;
        spec.readLatency = Tick{80};
        spec.writeLatency = Tick{80};
        spec.readBandwidth = 10 * kGiB;
        spec.writeBandwidth = 10 * kGiB;
        fast = tiers.addTier(spec);
        spec.name = "slow";
        spec.capacity = 256 * kPageSize;
        spec.readLatency = Tick{300};
        spec.writeLatency = Tick{300};
        spec.readBandwidth = 2 * kGiB;
        spec.writeBandwidth = 2 * kGiB;
        slow = tiers.addTier(spec);

        placement = std::make_unique<StaticPlacement>(
            TierPreference{fast, slow}, TierPreference{slow, fast});
        heap.setPolicy(placement.get());

        machine.tracer().setEnabled(true);
        checker = std::make_unique<InvariantChecker>(machine.tracer(),
                                                     /*strict=*/true);
    }

    /** One app page, resident on the slow tier. */
    Frame *
    slowAppPage()
    {
        Frame *frame = heap.allocAppPage();
        EXPECT_NE(frame, nullptr);
        EXPECT_EQ(frame->tier, slow);
        return frame;
    }

    uint64_t
    promote(Frame *frame, Tick window = Tick{0})
    {
        return migrator.promoteTransactional({FrameRef(frame)}, fast,
                                             window);
    }

    uint64_t
    demote(Frame *frame)
    {
        return migrator.demoteWithShadows({FrameRef(frame)}, slow);
    }

    Machine machine;
    TierManager tiers;
    LruEngine lru;
    MemAccessor mem;
    MigrationEngine migrator;
    KernelHeap heap;
    KlocManager kloc;
    std::unique_ptr<StaticPlacement> placement;
    std::unique_ptr<InvariantChecker> checker;
    TierId fast = kInvalidTier;
    TierId slow = kInvalidTier;
};

TEST(NomadShadow, CommittedPromotionKeepsSourceAsShadow)
{
    ShadowStack s;
    Frame *frame = s.slowAppPage();
    const Pfn src_pfn = frame->pfn;

    EXPECT_EQ(s.promote(frame), 1u);
    EXPECT_EQ(frame->tier, s.fast);
    ASSERT_TRUE(frame->hasShadow());
    EXPECT_EQ(frame->shadowTier, s.slow);
    EXPECT_EQ(frame->shadowPfn, src_pfn);
    EXPECT_TRUE(frame->shadowClean());
    EXPECT_EQ(s.tiers.shadowPages(), 1u);
    EXPECT_EQ(s.migrator.stats().shadowMakes, 1u);
    EXPECT_EQ(s.migrator.stats().txnCommits, 1u);
    // The shadow holds slow-tier residency: the source pages were
    // never freed.
    EXPECT_EQ(s.tiers.tier(s.slow).usedPages().value(), 1u);

    s.heap.freeAppPage(frame);
    EXPECT_EQ(s.tiers.shadowPages(), 0u)
        << "freeing the frame must drop its shadow";
    EXPECT_TRUE(s.checker->clean()) << s.checker->report();
}

TEST(NomadShadow, RecentWriteAbortsTransactionalCopy)
{
    ShadowStack s;
    Frame *frame = s.slowAppPage();
    s.mem.touch(frame, 4 * kKiB, AccessType::Write);

    EXPECT_EQ(s.promote(frame, 10 * kMillisecond), 0u);
    EXPECT_EQ(frame->tier, s.slow) << "aborted copy must not move";
    EXPECT_FALSE(frame->hasShadow());
    EXPECT_EQ(s.migrator.stats().txnAbortedWrite, 1u);
    EXPECT_EQ(s.migrator.stats().txnCommits, 0u);

    // Once the write ages past the recency window the copy commits.
    s.machine.charge(20 * kMillisecond);
    EXPECT_EQ(s.promote(frame, 10 * kMillisecond), 1u);
    EXPECT_EQ(frame->tier, s.fast);

    s.heap.freeAppPage(frame);
    EXPECT_TRUE(s.checker->clean()) << s.checker->report();
}

TEST(NomadShadow, CleanShadowServesFreeDemotion)
{
    ShadowStack s;
    Frame *frame = s.slowAppPage();
    const Pfn src_pfn = frame->pfn;
    ASSERT_EQ(s.promote(frame), 1u);

    const MigrationStats &stats = s.migrator.stats();
    const uint64_t copied_before = stats.migratedPages;
    EXPECT_EQ(s.demote(frame), 1u);
    EXPECT_EQ(frame->tier, s.slow);
    EXPECT_EQ(frame->pfn, src_pfn)
        << "shadow demotion re-homes into the original pages";
    EXPECT_FALSE(frame->hasShadow());
    EXPECT_EQ(stats.shadowFreeDemotions, 1u);
    EXPECT_EQ(stats.migratedPages, copied_before + 1);
    EXPECT_EQ(s.tiers.shadowPages(), 0u);

    s.heap.freeAppPage(frame);
    EXPECT_TRUE(s.checker->clean()) << s.checker->report();
}

TEST(NomadShadow, DirtyShadowIsDroppedAndDemotionCopies)
{
    ShadowStack s;
    Frame *frame = s.slowAppPage();
    ASSERT_EQ(s.promote(frame), 1u);

    // Dirty the fast copy; the slow shadow is now stale.
    s.machine.charge(1 * kMillisecond);
    s.mem.touch(frame, 4 * kKiB, AccessType::Write);
    EXPECT_FALSE(frame->shadowClean());

    EXPECT_EQ(s.demote(frame), 1u);
    EXPECT_EQ(frame->tier, s.slow);
    EXPECT_EQ(s.migrator.stats().shadowFreeDemotions, 0u);
    EXPECT_EQ(s.tiers.shadowPages(), 0u);
    EXPECT_EQ(s.tiers.shadowDrops(), 1u);

    s.heap.freeAppPage(frame);
    EXPECT_TRUE(s.checker->clean()) << s.checker->report();
}

TEST(NomadShadow, ZeroBudgetFallsBackToExclusiveMove)
{
    ShadowStack s;
    s.migrator.setShadowBudget(FrameCount{0});
    Frame *frame = s.slowAppPage();

    EXPECT_EQ(s.promote(frame), 1u);
    EXPECT_EQ(frame->tier, s.fast);
    EXPECT_FALSE(frame->hasShadow());
    EXPECT_EQ(s.tiers.shadowPages(), 0u);
    EXPECT_EQ(s.migrator.stats().shadowMakes, 0u);
    EXPECT_EQ(s.tiers.tier(s.slow).usedPages().value(), 0u)
        << "exclusive move must free the source pages";

    s.heap.freeAppPage(frame);
    EXPECT_TRUE(s.checker->clean()) << s.checker->report();
}

TEST(NomadShadow, OfflineTierReclaimsItsShadows)
{
    ShadowStack s;
    Frame *frame = s.slowAppPage();
    ASSERT_EQ(s.promote(frame), 1u);
    ASSERT_EQ(s.tiers.shadowPages(), 1u);

    s.migrator.offlineTier(s.slow);
    EXPECT_EQ(s.tiers.shadowPages(), 0u)
        << "shadow pages must not pin an offline tier";
    EXPECT_FALSE(frame->hasShadow());

    s.migrator.onlineTier(s.slow);
    s.heap.freeAppPage(frame);
    EXPECT_TRUE(s.checker->clean()) << s.checker->report();
}

// ---------------------------------------------------------------------------
// Golden thrash-under-Nomad trace.

/** Scenario outcome handed back from RunPool workers (gtest-free). */
struct GoldenOutcome
{
    std::string trace;
    std::vector<std::string> errors;
};

/**
 * A miniature deterministic thrash run under NomadStrategy: app
 * pages overflow the fast tier, a sliding window oscillates around
 * its capacity, and the policy's scan ticks drive transactional
 * promotions and shadow demotions. Small enough that the serialized
 * trace is a reviewable golden artifact.
 */
GoldenOutcome
runThrashNomad()
{
    GoldenOutcome out;
    Machine machine(2, 1);
    TierManager tiers(machine);
    LruEngine lru(machine, tiers);
    MemAccessor mem(machine, lru);
    MigrationEngine migrator(machine, tiers, lru);
    KernelHeap heap(mem, tiers);
    KlocManager kloc(heap, migrator);

    TierSpec spec;
    spec.name = "fast";
    spec.capacity = 128 * kPageSize;
    spec.readLatency = Tick{80};
    spec.writeLatency = Tick{80};
    spec.readBandwidth = 10 * kGiB;
    spec.writeBandwidth = 10 * kGiB;
    const TierId fast = tiers.addTier(spec);
    spec.name = "slow";
    spec.capacity = 256 * kPageSize;
    spec.readLatency = Tick{300};
    spec.writeLatency = Tick{300};
    spec.readBandwidth = 2 * kGiB;
    spec.writeBandwidth = 2 * kGiB;
    const TierId slow = tiers.addTier(spec);

    machine.tracer().setEnabled(true);
    InvariantChecker checker(machine.tracer(), /*strict=*/true);

    NomadStrategy policy(heap, lru, migrator, &kloc, fast, slow);
    policy.install();
    kloc.setEnabled(false);
    heap.setKlocInterface(false);
    policy.start();

    std::vector<Frame *> pages;
    for (int i = 0; i < 180; ++i) {
        Frame *frame = heap.allocAppPage();
        if (!frame) {
            out.errors.push_back("app page allocation failed");
            return out;
        }
        pages.push_back(frame);
    }

    for (int step = 0; step < 160; ++step) {
        machine.setCurrentCpu(static_cast<unsigned>(step % 2));
        const auto ustep = static_cast<uint64_t>(step);
        const uint64_t ws = 96 + (ustep % 32) * 2;      // 96..158
        const uint64_t base = (ustep * 4) % pages.size();
        for (uint64_t j = 0; j < 48; ++j) {
            const uint64_t pos = (ustep * 48 + j) % ws;
            mem.touch(pages[(base + pos) % pages.size()], 4 * kKiB,
                      pos % 5 == 0 ? AccessType::Write
                                   : AccessType::Read);
        }
        machine.charge(10 * kMillisecond);
    }

    policy.stop();
    if (policy.scanTicks() == 0)
        out.errors.push_back("no scan ticks fired");
    if (migrator.stats().shadowMakes == 0)
        out.errors.push_back("thrash never made a shadow copy");
    for (Frame *frame : pages)
        heap.freeAppPage(frame);
    if (!checker.clean())
        out.errors.push_back("invariant violations:\n" +
                             checker.report());
    out.trace = machine.tracer().serialize();
    machine.tracer().setEnabled(false);
    return out;
}

/**
 * Golden poison-recovery scenario: app pages promoted under a Nomad
 * window keep clean slow-tier shadows; an hwpoison burst on the fast
 * tier then recovers straight out of those shadows for free, while a
 * dirtied page (stale shadow, no backing) records a DataLoss. The
 * serialized trace pins the whole containment choreography —
 * FramePoison, ShadowReuse, FrameQuarantine, MemRecover, TierHealth —
 * as a reviewable artifact.
 */
GoldenOutcome
runPoisonRecoveryNomad()
{
    GoldenOutcome out;
    ShadowStack s;
    auto check = [&out](bool ok, const char *what) {
        if (!ok)
            out.errors.push_back(what);
        return ok;
    };

    std::vector<Frame *> pages;
    for (int i = 0; i < 8; ++i) {
        Frame *frame = s.heap.allocAppPage();
        if (!check(frame != nullptr && frame->tier == s.slow,
                   "slow app page allocation failed"))
            return out;
        pages.push_back(frame);
    }

    // Promote everything transactionally: each page now lives on fast
    // with a clean shadow left behind on slow.
    std::vector<FrameRef> batch(pages.begin(), pages.end());
    if (!check(s.migrator.promoteTransactional(batch, s.fast, Tick{0}) ==
                   pages.size(),
               "transactional promotion did not commit"))
        return out;

    // One page takes write traffic, staling its shadow.
    s.mem.touch(pages[5], 4 * kKiB, AccessType::Write);

    // Poison three clean-promoted pages and the dirtied one.
    for (const size_t victim : {0u, 2u, 4u}) {
        check(s.migrator.poisonFrame(pages[victim], PoisonOrigin::Access),
              "clean shadow recovery failed");
        check(pages[victim]->tier == s.slow && !pages[victim]->poisoned,
              "recovered page not back on its shadow");
    }
    check(!s.migrator.poisonFrame(pages[5], PoisonOrigin::Scan),
          "stale shadow must not recover");

    const PoisonStats &poison = s.migrator.poisonStats();
    check(poison.recoveredShadow == 3, "expected 3 shadow recoveries");
    check(poison.dataLoss == 1, "expected 1 data loss");
    check(s.tiers.quarantinedPages() == 3,
          "evacuated blocks not quarantined");

    for (Frame *frame : pages)
        s.heap.freeAppPage(frame);
    check(s.tiers.quarantinedPages() == 4,
          "in-place poisoned block not quarantined on free");
    if (!s.checker->clean())
        out.errors.push_back("invariant violations:\n" +
                             s.checker->report());
    out.trace = s.machine.tracer().serialize();
    s.machine.tracer().setEnabled(false);
    return out;
}

std::string
goldenPath(const std::string &name)
{
    return std::string(KLOC_TRACE_GOLDEN_DIR) + "/" + name + ".trace";
}

void
compareGolden(const std::string &name, const std::string &trace)
{
    const std::string path = goldenPath(name);
    if (std::getenv("KLOC_UPDATE_GOLDEN") != nullptr) {
        std::ofstream file(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(file) << "cannot write " << path;
        file << trace;
        GTEST_LOG_(INFO) << "updated golden trace " << path;
        return;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " (run with KLOC_UPDATE_GOLDEN=1 to create)";
    std::ostringstream want;
    want << in.rdbuf();
    EXPECT_EQ(trace, want.str())
        << "trace diverged from " << path
        << "; if the change is intentional, regenerate with "
           "KLOC_UPDATE_GOLDEN=1";
}

TEST(NomadGolden, ThrashTraceDeterministicAndGolden)
{
    const GoldenOutcome first = runThrashNomad();
    ASSERT_TRUE(first.errors.empty()) << first.errors.front();
    const GoldenOutcome second = runThrashNomad();
    ASSERT_TRUE(second.errors.empty()) << second.errors.front();
    EXPECT_EQ(first.trace, second.trace)
        << "trace not deterministic across runs";
    EXPECT_GT(parseTrace(first.trace).size(), 0u);
    compareGolden("thrash_nomad", first.trace);
}

TEST(NomadGolden, PoisonRecoveryTraceDeterministicAndGolden)
{
    const GoldenOutcome first = runPoisonRecoveryNomad();
    ASSERT_TRUE(first.errors.empty()) << first.errors.front();
    const GoldenOutcome second = runPoisonRecoveryNomad();
    ASSERT_TRUE(second.errors.empty()) << second.errors.front();
    EXPECT_EQ(first.trace, second.trace)
        << "trace not deterministic across runs";
    // The artifact must actually contain the containment choreography.
    uint64_t recovers = 0, quarantines = 0, losses = 0;
    for (const TraceEvent &event : parseTrace(first.trace)) {
        recovers += event.type == TraceEventType::MemRecover;
        quarantines += event.type == TraceEventType::FrameQuarantine;
        losses += event.type == TraceEventType::DataLoss;
    }
    EXPECT_EQ(recovers, 3u);
    EXPECT_EQ(quarantines, 4u);
    EXPECT_EQ(losses, 1u);
    compareGolden("poison_recovery_nomad", first.trace);
}

TEST(NomadGolden, ThrashTraceIdenticalAcrossPoolWorkerCounts)
{
    // The KLOC_JOBS axis: the same scenario run on pools of different
    // widths (and serially) must serialize identical bytes.
    const GoldenOutcome serial = runThrashNomad();
    ASSERT_TRUE(serial.errors.empty()) << serial.errors.front();
    for (const unsigned workers : {2u, 4u}) {
        RunPool pool(workers);
        const auto pooled = runIndexed<GoldenOutcome>(
            pool, 3, [](size_t) { return runThrashNomad(); });
        for (const GoldenOutcome &out : pooled) {
            ASSERT_TRUE(out.errors.empty()) << out.errors.front();
            EXPECT_EQ(out.trace, serial.trace)
                << "trace diverged on a " << workers << "-worker pool";
        }
    }
}

// ---------------------------------------------------------------------------
// Seeded transactional-copy fuzz under fault injection.

/** Per-seed fuzz outcome (gtest-free, RunPool-safe). */
struct TxnFuzzResult
{
    uint64_t seed = 0;
    std::vector<std::string> errors;
    MigrationStats migration;

    bool ok() const { return errors.empty(); }

    std::string
    summary() const
    {
        std::string out = "seed " + std::to_string(seed) + ":";
        for (const std::string &error : errors)
            out += "\n  " + error;
        return out;
    }
};

/**
 * Interleave transactional promotions, shadow demotions, writes, and
 * frees with injected migration faults and a slow-tier offline storm;
 * the strict checker must stay clean and every transactional window
 * must close.
 */
TxnFuzzResult
runTxnFuzzSeed(uint64_t seed)
{
    TxnFuzzResult result;
    result.seed = seed;
    auto check = [&result](bool ok, const char *what) {
        if (!ok)
            result.errors.push_back(what);
        return ok;
    };

    ShadowStack s;
    s.migrator.setShadowBudget(FrameCount{64});

    FaultSpec fspec;
    std::string err;
    if (!check(FaultSpec::parse(
                   "seed " + std::to_string(seed) + "\n"
                   "migration_no_space prob 0.25\n"
                   "tier_offline at 40000000 tier 1\n"
                   "tier_online at 80000000 tier 1\n",
                   fspec, &err),
               "FaultSpec::parse failed"))
        return result;
    s.machine.faults().configure(fspec);
    s.migrator.scheduleTierEvents();

    Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);
    std::vector<Frame *> pages;
    for (int step = 0; step < 600; ++step) {
        s.machine.setCurrentCpu(static_cast<unsigned>(rng.nextBounded(2)));
        const double action = rng.nextDouble();
        if (action < 0.25 && pages.size() < 192) {
            if (Frame *frame = s.heap.allocAppPage())
                pages.push_back(frame);
        } else if (action < 0.45 && !pages.empty()) {
            Frame *frame = pages[rng.nextBounded(pages.size())];
            s.mem.touch(frame, 4 * kKiB,
                        rng.nextBool(0.3) ? AccessType::Write
                                          : AccessType::Read);
        } else if (action < 0.65 && !pages.empty()) {
            std::vector<FrameRef> batch;
            for (int i = 0; i < 8 && !pages.empty(); ++i)
                batch.push_back(FrameRef(
                    pages[rng.nextBounded(pages.size())]));
            s.migrator.promoteTransactional(batch, s.fast,
                                            5 * kMillisecond);
        } else if (action < 0.80 && !pages.empty()) {
            std::vector<FrameRef> batch;
            for (int i = 0; i < 8 && !pages.empty(); ++i)
                batch.push_back(FrameRef(
                    pages[rng.nextBounded(pages.size())]));
            s.migrator.demoteWithShadows(batch, s.slow);
        } else if (action < 0.88 && !pages.empty()) {
            const size_t victim = rng.nextBounded(pages.size());
            s.heap.freeAppPage(pages[victim]);
            pages[victim] = pages.back();
            pages.pop_back();
        } else {
            s.machine.charge(
                static_cast<int64_t>(1 + rng.nextBounded(3)) *
                kMillisecond);
        }
    }

    s.machine.charge(100 * kMillisecond);
    check(s.tiers.tier(s.slow).online(),
          "slow tier never came back online");
    s.machine.faults().clear();

    for (Frame *frame : pages)
        s.heap.freeAppPage(frame);
    pages.clear();

    result.migration = s.migrator.stats();
    const MigrationStats &mig = result.migration;
    check(mig.txnBegins == mig.txnCommits + mig.txnAbortedWrite +
                               mig.txnAbortedNoSpace +
                               mig.txnAbortedBlocked,
          "transactional windows did not all close");
    check(s.tiers.shadowPages() == 0, "shadow pages leaked");
    check(s.checker->outstandingPins() == 0,
          "outstanding pins at teardown");
    check(s.checker->eventsChecked() > 0, "checker saw no events");
    if (!s.checker->clean())
        result.errors.push_back("invariant violations:\n" +
                                s.checker->report());
    s.machine.tracer().setEnabled(false);
    return result;
}

TEST(NomadTxnFuzz, AbortsUnderFaultsStayInvariantClean)
{
    constexpr uint64_t kFirstSeed = 100;
    constexpr uint64_t kSeedCount = 12;
    RunPool pool(RunPool::defaultWorkers());
    const auto results = runIndexed<TxnFuzzResult>(
        pool, kSeedCount,
        [](size_t i) { return runTxnFuzzSeed(kFirstSeed + i); });

    uint64_t total_aborts = 0;
    for (const TxnFuzzResult &result : results) {
        EXPECT_TRUE(result.ok()) << result.summary();
        total_aborts += result.migration.txnAbortedWrite +
                        result.migration.txnAbortedNoSpace +
                        result.migration.txnAbortedBlocked;
    }
    EXPECT_GT(total_aborts, 0u)
        << "fuzz never exercised a transactional abort";
}

} // namespace
} // namespace kloc
