/**
 * @file
 * Policy tests: per-strategy placement preferences (Table 5),
 * install() side effects, scan-driven migration, and the AutoNUMA
 * family for the Optane platform.
 */

#include <gtest/gtest.h>

#include "platform/optane.hh"
#include "platform/two_tier.hh"
#include "policy/autonuma.hh"
#include "policy/strategy.hh"

namespace kloc {
namespace {

class StrategyTest : public ::testing::Test
{
  protected:
    StrategyTest()
    {
        TwoTierPlatform::Config config;
        config.scale = 1024;  // tiny tiers, fast tests
        platform = std::make_unique<TwoTierPlatform>(config);
    }

    TierPreference
    kernelPref(StrategyKind kind, ObjClass cls, bool active)
    {
        TieringStrategy &strategy = platform->applyStrategy(kind);
        return strategy.kernelPreference(cls, active);
    }

    std::unique_ptr<TwoTierPlatform> platform;
};

TEST_F(StrategyTest, AllFastAllSlowAreStatic)
{
    const TierId fast = platform->fastTier();
    const TierId slow = platform->slowTier();
    EXPECT_EQ(kernelPref(StrategyKind::AllFast, ObjClass::PageCache, true),
              TierPreference{fast});
    EXPECT_EQ(kernelPref(StrategyKind::AllSlow, ObjClass::PageCache, true),
              TierPreference{slow});
}

TEST_F(StrategyTest, NaiveIsGreedyFastFirst)
{
    const auto pref =
        kernelPref(StrategyKind::Naive, ObjClass::SockBuf, false);
    ASSERT_EQ(pref.size(), 2u);
    EXPECT_EQ(pref[0], platform->fastTier());
}

TEST_F(StrategyTest, NimblePutsKernelObjectsInSlow)
{
    const auto pref =
        kernelPref(StrategyKind::Nimble, ObjClass::PageCache, true);
    EXPECT_EQ(pref[0], platform->slowTier())
        << "prior art places kernel objects in slow memory (§3.2)";
    // ...but application pages go fast-first.
    TieringStrategy &strategy =
        platform->applyStrategy(StrategyKind::Nimble);
    EXPECT_EQ(strategy.appPreference()[0], platform->fastTier());
}

TEST_F(StrategyTest, KlocFollowsKnodeHotness)
{
    const auto hot =
        kernelPref(StrategyKind::Kloc, ObjClass::PageCache, true);
    const auto cold =
        kernelPref(StrategyKind::Kloc, ObjClass::PageCache, false);
    EXPECT_EQ(hot[0], platform->fastTier());
    EXPECT_EQ(cold[0], platform->slowTier());
    // KLOC metadata is pinned fast regardless.
    const auto meta =
        kernelPref(StrategyKind::Kloc, ObjClass::KlocMeta, false);
    EXPECT_EQ(meta[0], platform->fastTier());
}

TEST_F(StrategyTest, InstallTogglesKlocMachinery)
{
    platform->applyStrategy(StrategyKind::Kloc);
    EXPECT_TRUE(platform->sys().kloc().enabled());
    EXPECT_TRUE(platform->sys().heap().klocInterface());
    EXPECT_TRUE(platform->sys().net().earlyDemux());

    platform->applyStrategy(StrategyKind::Nimble);
    EXPECT_FALSE(platform->sys().kloc().enabled());
    EXPECT_FALSE(platform->sys().heap().klocInterface());
    EXPECT_FALSE(platform->sys().net().earlyDemux());
}

TEST_F(StrategyTest, UnmanagedClassPinnedFastUnderKloc)
{
    platform->applyStrategy(StrategyKind::Kloc);
    platform->sys().kloc().setManagedClasses(
        ~(1u << static_cast<unsigned>(ObjClass::Journal)));
    TieringStrategy &strategy = *platform->strategy();
    const auto pref =
        strategy.kernelPreference(ObjClass::Journal, /*active=*/false);
    EXPECT_EQ(pref[0], platform->fastTier())
        << "excluded classes are always placed in fast memory (§7.3)";
    platform->sys().kloc().setManagedClasses(~0u);
}

TEST_F(StrategyTest, ScanTickDemotesUnderPressure)
{
    System &sys = platform->sys();
    platform->applyStrategy(StrategyKind::Nimble);
    // Fill the fast tier with cold app pages beyond the watermark.
    std::vector<Frame *> pages;
    Tier &fast = sys.tiers().tier(platform->fastTier());
    while (fast.utilization() < 0.95) {
        Frame *frame = sys.heap().allocAppPage();
        ASSERT_NE(frame, nullptr);
        pages.push_back(frame);
    }
    const uint64_t before = sys.migrator().stats().demotedPages;
    // Let several scan periods elapse; scans need two passes to
    // deactivate and demote.
    sys.machine().charge(kSecond);
    EXPECT_GT(sys.migrator().stats().demotedPages, before)
        << "Nimble never demoted cold app pages";
    for (Frame *frame : pages) {
        if (frame->tier != kInvalidTier)
            sys.heap().freeAppPage(frame);
    }
}

TEST(AutoNumaTest, LocalFirstPreferences)
{
    OptanePlatform platform;
    AutoNumaPolicy &policy =
        platform.applyPolicy(AutoNumaPolicy::Mode::AutoNuma);
    platform.moveTaskToSocket(0);
    EXPECT_EQ(policy.localTier(), platform.socketTiers()[0]);
    EXPECT_EQ(policy.appPreference()[0], platform.socketTiers()[0]);
    platform.moveTaskToSocket(1);
    EXPECT_EQ(policy.localTier(), platform.socketTiers()[1]);
    EXPECT_EQ(policy.kernelPreference(ObjClass::PageCache, true)[0],
              platform.socketTiers()[1]);
}

TEST(AutoNumaTest, BalanceTickMigratesHotAppPagesToTaskSocket)
{
    OptanePlatform platform;
    System &sys = platform.sys();
    platform.applyPolicy(AutoNumaPolicy::Mode::AutoNuma);
    platform.moveTaskToSocket(0);

    // Allocate app pages locally on socket 0 and make them hot.
    std::vector<Frame *> pages;
    for (int i = 0; i < 64; ++i) {
        Frame *frame = sys.heap().allocAppPage();
        ASSERT_NE(frame, nullptr);
        ASSERT_EQ(frame->tier, platform.socketTiers()[0]);
        sys.mem().touch(frame, kPageSize, AccessType::Read);
        sys.mem().touch(frame, kPageSize, AccessType::Read);
        pages.push_back(frame);
    }
    // The task moves; balancing should follow with the pages.
    platform.moveTaskToSocket(1);
    for (int round = 0; round < 6; ++round) {
        for (Frame *frame : pages)
            sys.mem().touch(frame, Bytes{64}, AccessType::Read);
        sys.machine().charge(60 * kMillisecond);
    }
    uint64_t moved = 0;
    for (Frame *frame : pages) {
        if (frame->tier == platform.socketTiers()[1])
            ++moved;
    }
    EXPECT_GT(moved, 32u) << "AutoNUMA failed to follow the task";
    for (Frame *frame : pages)
        sys.heap().freeAppPage(frame);
}

TEST(AutoNumaTest, StaticModeNeverMigrates)
{
    OptanePlatform platform;
    System &sys = platform.sys();
    platform.applyPolicy(AutoNumaPolicy::Mode::Static);
    std::vector<Frame *> pages;
    platform.moveTaskToSocket(0);
    for (int i = 0; i < 16; ++i)
        pages.push_back(sys.heap().allocAppPage());
    platform.moveTaskToSocket(1);
    sys.machine().charge(kSecond);
    EXPECT_EQ(sys.migrator().stats().migratedPages, 0u);
    for (Frame *frame : pages)
        sys.heap().freeAppPage(frame);
}

TEST(PlatformTest, TwoTierScalesCapacities)
{
    TwoTierPlatform::Config config;
    config.scale = 64;
    config.fastCapacity = 8 * kGiB;
    config.bandwidthRatio = 8;
    TwoTierPlatform platform(config);
    const TierSpec &fast =
        platform.sys().tiers().tier(platform.fastTier()).spec();
    const TierSpec &slow =
        platform.sys().tiers().tier(platform.slowTier()).spec();
    EXPECT_EQ(fast.capacity, 8 * kGiB / 64);
    EXPECT_EQ(fast.readBandwidth / slow.readBandwidth, 8u);
    EXPECT_EQ(fast.readLatency, slow.readLatency)
        << "throttled DRAM differs in bandwidth, not latency";
}

TEST(PlatformTest, OptaneBlendsDramAndPmemTiming)
{
    OptanePlatform platform;
    const TierSpec &tier =
        platform.sys().tiers().tier(platform.socketTiers()[0]).spec();
    const Tick dram = platform.config().dramLatency;
    EXPECT_GT(tier.readLatency, dram);
    EXPECT_LT(tier.readLatency, 3 * dram);
    EXPECT_GT(tier.writeLatency, tier.readLatency)
        << "PMEM writes are slower than reads";
    EXPECT_LT(tier.readBandwidth, platform.config().dramBandwidth);
}

TEST(PlatformTest, InterferenceRaisesLoadedSocketCosts)
{
    OptanePlatform platform;
    System &sys = platform.sys();
    const TierId s0 = platform.socketTiers()[0];
    const Tick quiet =
        sys.machine().memModel().rawCost(s0, Bytes{4096}, AccessType::Read, 0);
    platform.setInterference(true);
    const Tick loaded =
        sys.machine().memModel().rawCost(s0, Bytes{4096}, AccessType::Read, 0);
    EXPECT_GT(loaded, quiet);
    platform.setInterference(false);
}

TEST(PlatformTest, TaskCpusStayOnSocket)
{
    OptanePlatform platform;
    platform.moveTaskToSocket(1);
    for (const unsigned cpu : platform.taskCpus())
        EXPECT_EQ(platform.sys().machine().socketOf(cpu), 1);
}

} // namespace
} // namespace kloc
