/**
 * @file
 * Unit coverage for the policy dispatch layer: strategyName() for
 * every StrategyKind (including the AutoNuma mapping), registry
 * construction of every registered policy name, and AutoNumaPolicy
 * edge cases (empty remote tier, a single-frame KLOC following the
 * task across sockets, all tiers cold).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/kloc_manager.hh"
#include "fs/objects.hh"
#include "kobj/kernel_heap.hh"
#include "mem/placement.hh"
#include "policy/autonuma.hh"
#include "policy/registry.hh"
#include "policy/strategy.hh"
#include "sim/machine.hh"

namespace kloc {
namespace {

TEST(StrategyName, CoversEveryKind)
{
    EXPECT_STREQ(strategyName(StrategyKind::AllFast), "all_fast");
    EXPECT_STREQ(strategyName(StrategyKind::AllSlow), "all_slow");
    EXPECT_STREQ(strategyName(StrategyKind::Naive), "naive");
    EXPECT_STREQ(strategyName(StrategyKind::AutoNuma), "autonuma");
    EXPECT_STREQ(strategyName(StrategyKind::Nimble), "nimble");
    EXPECT_STREQ(strategyName(StrategyKind::NimblePlusPlus), "nimble++");
    EXPECT_STREQ(strategyName(StrategyKind::KlocNoMigration),
                 "klocs_nomigration");
    EXPECT_STREQ(strategyName(StrategyKind::Kloc), "klocs");
}

/** Minimal two-tier stack for registry construction tests. */
struct RegistryStack
{
    RegistryStack()
        : machine(2, 1), tiers(machine), lru(machine, tiers),
          mem(machine, lru), migrator(machine, tiers, lru),
          heap(mem, tiers), kloc(heap, migrator)
    {
        TierSpec spec;
        spec.name = "fast";
        spec.capacity = 64 * kPageSize;
        spec.readLatency = Tick{80};
        spec.writeLatency = Tick{80};
        spec.readBandwidth = 10 * kGiB;
        spec.writeBandwidth = 10 * kGiB;
        fast = tiers.addTier(spec);
        spec.name = "slow";
        spec.capacity = 64 * kPageSize;
        slow = tiers.addTier(spec);
    }

    PolicyContext
    context(bool with_kloc = true)
    {
        return PolicyContext{heap, lru, migrator,
                             with_kloc ? &kloc : nullptr, fast, slow};
    }

    Machine machine;
    TierManager tiers;
    LruEngine lru;
    MemAccessor mem;
    MigrationEngine migrator;
    KernelHeap heap;
    KlocManager kloc;
    TierId fast = kInvalidTier;
    TierId slow = kInvalidTier;
};

TEST(PolicyRegistry, BuildsEveryRegisteredName)
{
    RegistryStack s;
    for (const std::string &name : policyNames()) {
        auto policy = makePolicy(name, s.context());
        ASSERT_NE(policy, nullptr) << "registry failed for " << name;
        EXPECT_EQ(policy->name(), name);
    }
}

TEST(PolicyRegistry, ConformanceNamesAreRegistered)
{
    RegistryStack s;
    const auto &all = policyNames();
    for (const std::string &name : conformancePolicyNames()) {
        EXPECT_NE(std::find(all.begin(), all.end(), name), all.end())
            << name << " not in policyNames()";
        EXPECT_NE(makePolicy(name, s.context()), nullptr);
    }
}

TEST(PolicyRegistry, UnknownNameReturnsNull)
{
    RegistryStack s;
    EXPECT_EQ(makePolicy("definitely_not_a_policy", s.context()),
              nullptr);
    EXPECT_EQ(makePolicy("", s.context()), nullptr);
}

TEST(PolicyRegistry, KlocPoliciesRequireAManager)
{
    RegistryStack s;
    for (const std::string &name :
         {std::string("klocs"), std::string("klocs_nomigration"),
          std::string("kloc_nomad")}) {
        EXPECT_EQ(makePolicy(name, s.context(/*with_kloc=*/false)),
                  nullptr)
            << name << " must refuse a null KlocManager";
    }
    // Plain Nomad and Jenga don't need one.
    EXPECT_NE(makePolicy("nomad", s.context(false)), nullptr);
    EXPECT_NE(makePolicy("jenga", s.context(false)), nullptr);
}

// ---------------------------------------------------------------------------
// AutoNumaPolicy edge cases (two sockets, one tier each).

/** Two-socket stack: cpus {0,1} on socket 0, {2,3} on socket 1. */
struct NumaStack
{
    explicit NumaStack(AutoNumaPolicy::Mode mode)
        : machine(4, 2), tiers(machine), lru(machine, tiers),
          mem(machine, lru), migrator(machine, tiers, lru),
          heap(mem, tiers), kloc(heap, migrator)
    {
        TierSpec spec;
        spec.name = "socket0";
        spec.capacity = 128 * kPageSize;
        spec.readLatency = Tick{100};
        spec.writeLatency = Tick{100};
        spec.readBandwidth = 10 * kGiB;
        spec.writeBandwidth = 10 * kGiB;
        spec.socket = 0;
        tier0 = tiers.addTier(spec);
        spec.name = "socket1";
        spec.socket = 1;
        tier1 = tiers.addTier(spec);

        AutoNumaPolicy::Config config;
        config.scanPeriod = 10 * kMillisecond;
        policy = std::make_unique<AutoNumaPolicy>(
            mode, heap, lru, migrator, &kloc,
            std::vector<TierId>{tier0, tier1}, config);
        policy->install();
    }

    Machine machine;
    TierManager tiers;
    LruEngine lru;
    MemAccessor mem;
    MigrationEngine migrator;
    KernelHeap heap;
    KlocManager kloc;
    std::unique_ptr<AutoNumaPolicy> policy;
    TierId tier0 = kInvalidTier;
    TierId tier1 = kInvalidTier;
};

TEST(AutoNumaEdge, EmptyRemoteTierTicksWithoutMigrating)
{
    NumaStack s(AutoNumaPolicy::Mode::AutoNuma);
    s.machine.setCurrentCpu(0);
    s.policy->start();
    // No allocations anywhere: ticks must fire and move nothing.
    // Charge in scan-period chunks so each tick can reschedule.
    for (int i = 0; i < 10; ++i)
        s.machine.charge(10 * kMillisecond);
    EXPECT_GE(s.policy->balanceTicks(), 2u);
    EXPECT_EQ(s.migrator.stats().migratedPages, 0u);
    EXPECT_EQ(s.migrator.stats().attempts, 0u);
    s.policy->stop();
}

TEST(AutoNumaEdge, SingleFrameKlocFollowsTheTask)
{
    NumaStack s(AutoNumaPolicy::Mode::Kloc);
    s.machine.setCurrentCpu(0);

    Knode *knode = s.kloc.mapKnode(11);
    ASSERT_NE(knode, nullptr);
    s.kloc.markActive(knode);
    auto obj = std::make_unique<KernelObject>(KobjKind::PageCachePage);
    ASSERT_TRUE(s.heap.allocBacking(*obj, true, knode->id));
    s.kloc.addObject(knode, obj.get());
    ASSERT_EQ(obj->frame()->tier, s.tier0) << "born on the local socket";

    // The scheduler moves the task to socket 1; the KLOC's one frame
    // must follow on the next balance tick.
    s.machine.setCurrentCpu(2);
    s.policy->start();
    for (int i = 0; i < 5; ++i)
        s.machine.charge(10 * kMillisecond);
    EXPECT_EQ(obj->frame()->tier, s.tier1);
    s.policy->stop();

    s.kloc.removeObject(obj.get());
    s.heap.freeBacking(*obj);
    s.kloc.unmapKnode(knode);
}

TEST(AutoNumaEdge, AllTiersColdMigratesNothing)
{
    NumaStack s(AutoNumaPolicy::Mode::AutoNuma);
    s.machine.setCurrentCpu(2);  // socket 1 allocates...
    std::vector<Frame *> pages;
    for (int i = 0; i < 32; ++i) {
        Frame *frame = s.heap.allocAppPage();
        ASSERT_NE(frame, nullptr);
        EXPECT_EQ(frame->tier, s.tier1);
        pages.push_back(frame);
    }

    // ...then the task runs on socket 0 without ever touching them.
    s.machine.setCurrentCpu(0);
    s.policy->start();
    // Let the first ticks drain any allocation-time referenced bits.
    for (int i = 0; i < 5; ++i)
        s.machine.charge(10 * kMillisecond);
    const uint64_t settled = s.migrator.stats().migratedPages;
    for (int i = 0; i < 5; ++i)
        s.machine.charge(10 * kMillisecond);
    EXPECT_EQ(s.migrator.stats().migratedPages, settled)
        << "cold pages kept migrating with no references";
    s.policy->stop();

    for (Frame *frame : pages)
        s.heap.freeAppPage(frame);
}

} // namespace
} // namespace kloc
