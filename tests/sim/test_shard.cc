/**
 * @file
 * Sharded-simulation-core tests: ShardContext locality, the
 * epoch-barrier protocol (clock alignment, mailbox drain order,
 * trace merge), and the headline determinism contract — the fleet
 * scenario's serialized trace is byte-identical at any worker
 * count, including under migration-fault fuzzing.
 *
 * Regenerate the committed golden trace after an intentional
 * tracepoint or scenario change with:
 *
 *   KLOC_UPDATE_GOLDEN=1 ./test_sim --gtest_filter='ShardGolden.*'
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault.hh"
#include "sim/epoch.hh"
#include "sim/machine.hh"
#include "sim/shard.hh"
#include "trace/invariants.hh"
#include "workload/fleet.hh"

#ifndef KLOC_SHARD_GOLDEN_DIR
#error "KLOC_SHARD_GOLDEN_DIR must point at tests/sim/golden"
#endif

namespace kloc {
namespace {

TierSpec
testTier(const char *name, Bytes capacity, Tick latency, Bytes bw)
{
    TierSpec spec;
    spec.name = name;
    spec.capacity = capacity;
    spec.readLatency = latency;
    spec.writeLatency = latency;
    spec.readBandwidth = bw;
    spec.writeBandwidth = bw;
    return spec;
}

TEST(ShardContext, LocalTimeAndRefAccounting)
{
    MachineCore core(8, 2);
    const TierId t = core.memModel().addTier(
        testTier("t", kMiB, Tick{80}, 10 * kGiB));

    ShardContext shard(1, core, 5);
    EXPECT_EQ(shard.id(), 1u);
    EXPECT_EQ(shard.socket(), core.socketOf(5));

    shard.charge(Tick{100});
    EXPECT_EQ(shard.now(), 100);

    int fired = 0;
    shard.schedule(Tick{500}, [&] { ++fired; });
    shard.charge(Tick{300});
    EXPECT_EQ(fired, 0);
    shard.charge(Tick{200});
    EXPECT_EQ(fired, 1);

    const Tick cost =
        shard.access(t, kPageSize, AccessType::Read, RefDomain::Kernel);
    EXPECT_GT(cost, 0);
    shard.access(t, Bytes{64}, AccessType::Write, RefDomain::User);
    EXPECT_EQ(shard.refs().kernelRefs, 1u);
    EXPECT_EQ(shard.refs().userRefs, 1u);
    EXPECT_EQ(shard.ops(), 2u);

    // Shard-local accounting never touched the shared core.
    EXPECT_EQ(core.refs().kernelRefs, 0u);
    EXPECT_EQ(core.refs().userRefs, 0u);
}

TEST(ShardedEngine, BarrierAlignsClocksAndFoldsRefs)
{
    Machine machine(8, 1);
    const TierId t = machine.memModel().addTier(
        testTier("t", kMiB, Tick{80}, 10 * kGiB));

    ShardedEngine::Config config;
    config.shards = 3;
    config.epochLength = Tick{100000};
    config.workers = 2;
    ShardedEngine engine(machine, config);

    engine.run(2, [&](ShardContext &shard, uint64_t) {
        // Unequal per-shard progress; the barrier re-aligns it.
        for (unsigned i = 0; i <= shard.id(); ++i)
            shard.access(t, kPageSize, AccessType::Read,
                         RefDomain::User);
    });

    EXPECT_EQ(engine.epochsRun(), 2u);
    EXPECT_EQ(machine.now(), Tick{200000});
    for (unsigned i = 0; i < engine.shardCount(); ++i)
        EXPECT_EQ(engine.shard(i).now(), machine.now());

    // 1+2+3 accesses per epoch, two epochs, all folded at barriers.
    EXPECT_EQ(machine.userRefs(), 12u);
    EXPECT_GT(machine.userRefTicks(), 0);
    // Epoch-local counters were consumed by the fold.
    for (unsigned i = 0; i < engine.shardCount(); ++i)
        EXPECT_EQ(engine.shard(i).refs().userRefs, 0u);
}

TEST(ShardedEngine, OvershootStretchesEpochForEveryShard)
{
    Machine machine(4, 1);
    ShardedEngine::Config config;
    config.shards = 2;
    config.epochLength = Tick{1000};
    ShardedEngine engine(machine, config);

    engine.run(1, [&](ShardContext &shard, uint64_t) {
        if (shard.id() == 0)
            shard.charge(Tick{2500});  // past the barrier
    });

    EXPECT_EQ(machine.now(), Tick{2500});
    EXPECT_EQ(engine.shard(0).now(), Tick{2500});
    EXPECT_EQ(engine.shard(1).now(), Tick{2500});

    // The next epoch starts where the stretched one ended.
    engine.run(1, [](ShardContext &, uint64_t) {});
    EXPECT_EQ(machine.now(), Tick{3500});
}

TEST(ShardedEngine, GlobalEventsRunAtBarriers)
{
    Machine machine(4, 1);
    std::vector<Tick> fired;
    machine.events().schedule(Tick{500},
                              [&] { fired.push_back(machine.now()); });
    machine.events().schedule(Tick{1500},
                              [&] { fired.push_back(machine.now()); });

    ShardedEngine::Config config;
    config.shards = 2;
    config.epochLength = Tick{1000};
    ShardedEngine engine(machine, config);
    engine.run(2, [](ShardContext &, uint64_t) {});

    // Global async work runs when the coordinator advances the
    // machine clock, i.e. at the barrier tick that passes it.
    ASSERT_EQ(fired.size(), 2u);
    EXPECT_EQ(fired[0], Tick{1000});
    EXPECT_EQ(fired[1], Tick{2000});
}

TEST(ShardedEngine, MailboxDrainsInShardOrderWithCleanProtocolTrace)
{
    Machine machine(4, 1);
    machine.tracer().setEnabled(true);
    InvariantChecker checker(machine.tracer(), /*strict=*/true);

    ShardedEngine::Config config;
    config.shards = 3;
    config.epochLength = Tick{1000};
    config.workers = 4;
    ShardedEngine engine(machine, config);

    std::vector<unsigned> applied;
    engine.run(2, [&](ShardContext &shard, uint64_t) {
        // Two messages per shard; applies record the drain order.
        for (uint64_t m = 0; m < 2; ++m) {
            ShardMessage msg;
            msg.kind = shard.id();
            msg.apply = [&applied, id = shard.id()] {
                applied.push_back(id);
            };
            shard.post(std::move(msg));
        }
    });

    EXPECT_EQ(engine.messagesDrained(), 12u);
    const std::vector<unsigned> want = {0, 0, 1, 1, 2, 2,
                                        0, 0, 1, 1, 2, 2};
    EXPECT_EQ(applied, want);

    // Protocol events passed the checker's epoch/order invariants.
    EXPECT_TRUE(checker.clean()) << checker.report();
    unsigned barriers = 0, msgs = 0, work = 0;
    for (const TraceEvent &event : machine.tracer().events()) {
        switch (event.type) {
          case TraceEventType::EpochBarrier: ++barriers; break;
          case TraceEventType::ShardMsg: ++msgs; break;
          case TraceEventType::ShardWork: ++work; break;
          default: break;
        }
    }
    EXPECT_EQ(barriers, 2u);
    EXPECT_EQ(msgs, 12u);
    EXPECT_EQ(work, 6u);
}

TEST(ShardedEngine, CrossShardPostsApplyIdenticallyAtAnyWorkerCount)
{
    // Regression guard for the workload-port pattern: shards post
    // mutations of *shared* state within the same epoch, with uneven
    // per-shard post counts. The applied sequence — and therefore
    // every downstream shared-state read — must not depend on the
    // worker count racing the bodies.
    auto run = [](unsigned workers) {
        Machine machine(4, 1);
        ShardedEngine::Config config;
        config.shards = 4;
        config.epochLength = Tick{1000};
        config.workers = workers;
        ShardedEngine engine(machine, config);

        std::vector<uint64_t> journal;  // shared; barrier-only writes
        engine.run(3, [&](ShardContext &shard, uint64_t epoch) {
            // Shard i posts i+1 messages per epoch (shard 3 skips
            // every other epoch) so the drain schedule is ragged.
            if (shard.id() == 3 && epoch % 2 == 1)
                return;
            for (uint64_t m = 0; m <= shard.id(); ++m) {
                ShardMessage msg;
                msg.kind = 0x77;
                msg.apply = [&journal, id = shard.id(), epoch, m] {
                    journal.push_back((epoch << 16) | (id << 8) | m);
                };
                shard.post(std::move(msg));
            }
        });
        return journal;
    };

    const std::vector<uint64_t> serial = run(1);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(run(2), serial);
    EXPECT_EQ(run(4), serial);
    // Within each epoch the journal is (shard, post-order) sorted.
    for (size_t i = 1; i < serial.size(); ++i) {
        if ((serial[i] >> 16) == (serial[i - 1] >> 16))
            EXPECT_GT(serial[i], serial[i - 1]);
    }
}

TEST(ShardedEngine, MergedStagedEventsAreTickOrdered)
{
    Machine machine(4, 1);
    machine.tracer().setEnabled(true);

    ShardedEngine::Config config;
    config.shards = 3;
    config.epochLength = Tick{1000};
    ShardedEngine engine(machine, config);

    engine.run(1, [&](ShardContext &shard, uint64_t) {
        // Interleave ticks across shards: shard 0 emits at 100/400,
        // shard 1 at 200/500, shard 2 at 300/600 — and one shared
        // tick (700) where shard order must break the tie.
        shard.charge(Tick{100} + Tick{100} * shard.id());
        shard.emit(TraceEventType::FramePin, shard.id(), 1);
        shard.charge(Tick{300});
        shard.emit(TraceEventType::FrameUnpin, shard.id(), 1);
        shard.charge(Tick{600} - shard.now() + Tick{700});
    });

    const std::vector<TraceEvent> events = machine.tracer().events();
    ASSERT_GE(events.size(), 6u);
    Tick last{};
    uint64_t seq = 0;
    for (const TraceEvent &event : events) {
        EXPECT_GE(event.tick, last) << "trace tick went backwards";
        EXPECT_EQ(event.seq, seq++) << "absorb broke seq numbering";
        last = event.tick;
    }
    // The merged pin events landed in (tick, shard) order.
    EXPECT_EQ(events[0].tick, Tick{100});
    EXPECT_EQ(events[0].args[0], 0u);
    EXPECT_EQ(events[1].tick, Tick{200});
    EXPECT_EQ(events[1].args[0], 1u);
    EXPECT_EQ(events[2].tick, Tick{300});
    EXPECT_EQ(events[2].args[0], 2u);
}

// ---------------------------------------------------------------------------
// Fleet scenario: worker-count byte-identity, golden trace, fault fuzz.

struct FleetRun
{
    std::string trace;
    std::string report;
    bool clean = false;
    FleetResult result;
};

/** One fleet run on a fresh two-tier System with @p workers threads. */
FleetRun
runFleet(unsigned workers, uint64_t seed, const std::string &fault_spec,
         bool small_config)
{
    System::Config sys_config;
    sys_config.cpus = 8;
    sys_config.sockets = 2;
    System sys(sys_config);

    FleetConfig config;
    config.workers = workers;
    config.seed = seed;
    if (small_config) {
        config.shards = 4;
        config.epochs = 5;
        config.opsPerEpoch = 250;
        config.pagesPerShard = 256;
        config.hotPages = 64;
        config.migrateBatch = 12;
    } else {
        config.shards = 4;
        config.epochs = 10;
        config.opsPerEpoch = 600;
        config.pagesPerShard = 512;
        config.hotPages = 96;
        config.migrateBatch = 16;
    }

    // The fast tier holds well under the fleet's combined hot set,
    // so barrier-applied promotions contend for real capacity.
    const uint64_t fast_pages = config.shards * config.hotPages * 2 / 3;
    const uint64_t slow_pages =
        config.shards * config.pagesPerShard + fast_pages;
    config.fastTier = sys.tiers().addTier(
        testTier("fast", fast_pages * kPageSize, Tick{80}, 10 * kGiB));
    config.slowTier = sys.tiers().addTier(
        testTier("slow", slow_pages * kPageSize, Tick{300}, 2 * kGiB));

    if (!fault_spec.empty()) {
        FaultSpec spec;
        std::string err;
        EXPECT_TRUE(FaultSpec::parse(fault_spec, spec, &err)) << err;
        sys.machine().faults().configure(spec);
    }

    sys.machine().tracer().setEnabled(true);
    InvariantChecker checker(sys.machine().tracer(), /*strict=*/true);

    FleetScenario fleet(sys, config);
    fleet.setup();
    FleetRun run;
    run.result = fleet.run();
    fleet.teardown();
    run.trace = sys.machine().tracer().serialize();
    run.report = checker.report();
    run.clean = checker.clean();
    return run;
}

std::string
goldenPath(const std::string &name)
{
    return std::string(KLOC_SHARD_GOLDEN_DIR) + "/" + name + ".trace";
}

void
compareGolden(const std::string &name, const std::string &trace)
{
    const std::string path = goldenPath(name);
    if (std::getenv("KLOC_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << trace;
        GTEST_LOG_(INFO) << "updated golden trace " << path;
        return;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " (run with KLOC_UPDATE_GOLDEN=1 to create)";
    std::ostringstream want;
    want << in.rdbuf();
    EXPECT_EQ(trace, want.str())
        << "trace diverged from " << path
        << "; if the change is intentional, regenerate with "
           "KLOC_UPDATE_GOLDEN=1";
}

TEST(ShardGolden, FleetByteIdenticalAcrossWorkerCounts)
{
    const FleetRun serial = runFleet(1, 42, "", /*small_config=*/false);
    EXPECT_TRUE(serial.clean) << serial.report;
    EXPECT_GT(serial.result.promotedPages, 0u);
    EXPECT_GT(serial.result.demotedPages, 0u);
    EXPECT_GT(serial.result.eventsMerged, 0u);
    EXPECT_EQ(serial.result.epochs, 10u);

    for (const unsigned workers : {2u, 4u}) {
        const FleetRun parallel =
            runFleet(workers, 42, "", /*small_config=*/false);
        EXPECT_TRUE(parallel.clean) << parallel.report;
        EXPECT_EQ(serial.trace, parallel.trace)
            << "fleet trace diverged at " << workers << " workers";
        EXPECT_EQ(serial.result.promotedPages,
                  parallel.result.promotedPages);
        EXPECT_EQ(serial.result.elapsed, parallel.result.elapsed);
    }

    EXPECT_GT(parseTrace(serial.trace).size(), 0u);
    compareGolden("fleet_sharded", serial.trace);
}

TEST(ShardFuzz, MigrationFaultSeedsByteIdenticalAcrossWorkers)
{
    // 24 seeds of transient migration NoSpace faults: the faults
    // fire inside barrier-applied migrations, so the consult
    // sequence — and therefore the whole trace — must not depend on
    // the worker count.
    for (uint64_t seed = 1; seed <= 24; ++seed) {
        std::ostringstream spec;
        spec << "seed " << seed << "\n"
             << "migration_no_space prob 0."
             << (seed % 2 ? "2" : "05") << "\n";
        const FleetRun serial =
            runFleet(1, seed, spec.str(), /*small_config=*/true);
        const FleetRun parallel =
            runFleet(4, seed, spec.str(), /*small_config=*/true);
        EXPECT_TRUE(serial.clean) << "seed " << seed << ": "
                                  << serial.report;
        EXPECT_TRUE(parallel.clean) << "seed " << seed << ": "
                                    << parallel.report;
        EXPECT_EQ(serial.trace, parallel.trace)
            << "fault seed " << seed << " diverged across workers";
    }
}

} // namespace
} // namespace kloc
