/**
 * @file
 * Simulation-layer tests: virtual clock, event queue ordering and
 * re-entrancy, memory timing model, and Machine accounting.
 */

#include <gtest/gtest.h>

#include <vector>

#include "base/clock.hh"
#include "sim/event_queue.hh"
#include "sim/machine.hh"
#include "sim/memory_model.hh"

namespace kloc {
namespace {

TEST(VirtualClock, AdvancesMonotonically)
{
    VirtualClock clock;
    EXPECT_EQ(clock.now(), 0);
    clock.advance(Tick{100});
    clock.advance(Tick{0});
    EXPECT_EQ(clock.now(), 100);
    clock.advanceTo(Tick{250});
    EXPECT_EQ(clock.now(), 250);
    clock.reset();
    EXPECT_EQ(clock.now(), 0);
}

TEST(EventQueue, RunsInDeadlineOrder)
{
    EventQueue events;
    std::vector<int> order;
    events.schedule(Tick{30}, [&] { order.push_back(3); });
    events.schedule(Tick{10}, [&] { order.push_back(1); });
    events.schedule(Tick{20}, [&] { order.push_back(2); });
    ASSERT_TRUE(events.nextDeadline().has_value());
    EXPECT_EQ(*events.nextDeadline(), 10);
    EXPECT_EQ(events.runDue(Tick{25}), 2u);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(events.runDue(Tick{100}), 1u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_TRUE(events.empty());
    EXPECT_EQ(events.nextDeadline(), std::nullopt);
}

TEST(EventQueue, TiesBreakByInsertionOrder)
{
    EventQueue events;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        events.schedule(Tick{50}, [&order, i] { order.push_back(i); });
    events.runDue(Tick{50});
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventSchedulingDueEventRunsInSameDrain)
{
    EventQueue events;
    std::vector<int> order;
    events.schedule(Tick{10}, [&] {
        order.push_back(1);
        events.schedule(Tick{10}, [&] { order.push_back(2); });
    });
    events.runDue(Tick{15});
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, FutureEventStaysQueued)
{
    EventQueue events;
    int fired = 0;
    events.schedule(Tick{100}, [&] { ++fired; });
    EXPECT_EQ(events.runDue(Tick{99}), 0u);
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(events.runDue(Tick{100}), 1u);
    EXPECT_EQ(fired, 1);
}

TEST(MemoryModel, AccessCostScalesWithSizeAndTier)
{
    MemoryModel model;
    TierSpec fast;
    fast.name = "fast";
    fast.capacity = kMiB;
    fast.readLatency = Tick{80};
    fast.writeLatency = Tick{80};
    fast.readBandwidth = 30ULL * 1000 * kMiB;
    fast.writeBandwidth = 30ULL * 1000 * kMiB;
    const TierId f = model.addTier(fast);

    TierSpec slow = fast;
    slow.name = "slow";
    slow.readBandwidth /= 8;
    slow.writeBandwidth /= 8;
    const TierId s = model.addTier(slow);

    const Tick f_cost = model.rawCost(f, kPageSize, AccessType::Read, 0);
    const Tick s_cost = model.rawCost(s, kPageSize, AccessType::Read, 0);
    EXPECT_GT(s_cost, f_cost * 3);
    EXPECT_GT(model.rawCost(f, 64 * kKiB, AccessType::Read, 0), f_cost);
}

TEST(MemoryModel, LlcFilteringReducesExpectedCost)
{
    MemoryModel model;
    TierSpec spec;
    spec.name = "t";
    spec.capacity = kMiB;
    spec.readLatency = Tick{100};
    spec.writeLatency = Tick{100};
    spec.readBandwidth = 10 * kGiB;
    spec.writeBandwidth = 10 * kGiB;
    const TierId t = model.addTier(spec);
    const Tick raw = model.accessCost(t, Bytes{4096}, AccessType::Read, 0);
    model.setLlcHitFraction(0.5);
    const Tick filtered = model.accessCost(t, Bytes{4096}, AccessType::Read, 0);
    EXPECT_LT(filtered, raw);
    EXPECT_GT(filtered, raw / 3);
}

TEST(MemoryModel, RemotePenaltyAndInterference)
{
    MemoryModel model;
    TierSpec spec;
    spec.name = "s0";
    spec.capacity = kMiB;
    spec.readLatency = Tick{80};
    spec.writeLatency = Tick{80};
    spec.readBandwidth = 10 * kGiB;
    spec.writeBandwidth = 10 * kGiB;
    spec.socket = 0;
    const TierId t = model.addTier(spec);

    const Tick local = model.rawCost(t, Bytes{64}, AccessType::Read, 0);
    const Tick remote = model.rawCost(t, Bytes{64}, AccessType::Read, 1);
    EXPECT_GT(remote, local);

    model.setInterference(0, 2.0);
    const Tick loaded = model.rawCost(t, Bytes{64}, AccessType::Read, 0);
    EXPECT_NEAR(static_cast<double>(loaded),
                2.0 * static_cast<double>(local), 2.0);
    model.clearInterference();
    EXPECT_EQ(model.rawCost(t, Bytes{64}, AccessType::Read, 0), local);
}

TEST(Machine, SocketTopology)
{
    Machine machine(16, 2);
    EXPECT_EQ(machine.cpuCount(), 16u);
    EXPECT_EQ(machine.socketCount(), 2u);
    EXPECT_EQ(machine.socketOf(0), 0);
    EXPECT_EQ(machine.socketOf(7), 0);
    EXPECT_EQ(machine.socketOf(8), 1);
    EXPECT_EQ(machine.socketOf(15), 1);
    machine.setCurrentCpu(9);
    EXPECT_EQ(machine.currentSocket(), 1);
}

TEST(Machine, ChargeRunsDueEvents)
{
    Machine machine(1, 1);
    int fired = 0;
    machine.events().schedule(Tick{500}, [&] { ++fired; });
    machine.charge(Tick{499});
    EXPECT_EQ(fired, 0);
    machine.charge(Tick{1});
    EXPECT_EQ(fired, 1);
}

TEST(Machine, CpuWorkDividesByParallelism)
{
    Machine machine(4, 1);
    machine.setCpuParallelism(4);
    const Tick start = machine.now();
    machine.cpuWork(Tick{400});
    EXPECT_EQ(machine.now() - start, 100);
    machine.setCpuParallelism(1);
    machine.cpuWork(Tick{400});
    EXPECT_EQ(machine.now() - start, 500);
}

TEST(Machine, RefAccountingSplitsDomains)
{
    Machine machine(1, 1);
    TierSpec spec;
    spec.name = "t";
    spec.capacity = kMiB;
    spec.readLatency = Tick{80};
    spec.writeLatency = Tick{80};
    spec.readBandwidth = kGiB;
    spec.writeBandwidth = kGiB;
    const TierId t = machine.memModel().addTier(spec);
    machine.access(t, Bytes{4096}, AccessType::Read, RefDomain::Kernel);
    machine.access(t, Bytes{4096}, AccessType::Write, RefDomain::User);
    machine.access(t, Bytes{64}, AccessType::Read, RefDomain::Kernel);
    EXPECT_EQ(machine.kernelRefs(), 2u);
    EXPECT_EQ(machine.userRefs(), 1u);
    EXPECT_GT(machine.kernelRefTicks(), 0);
    EXPECT_GT(machine.userRefTicks(), 0);
    machine.reset();
    EXPECT_EQ(machine.kernelRefs(), 0u);
    EXPECT_EQ(machine.now(), 0);
}

} // namespace
} // namespace kloc
