/**
 * @file
 * Golden-trace regression tests: two small deterministic scenarios
 * whose serialized traces must be byte-identical across runs and
 * match the committed golden files under tests/trace/golden/.
 *
 * Regenerate the golden files after an intentional tracepoint or
 * scenario change with:
 *
 *   KLOC_UPDATE_GOLDEN=1 ./test_trace --gtest_filter='GoldenTrace.*'
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "core/kloc_manager.hh"
#include "fault/fault.hh"
#include "fs/block_layer.hh"
#include "fs/device.hh"
#include "fs/journal.hh"
#include "fs/objects.hh"
#include "mem/placement.hh"
#include "sim/machine.hh"
#include "trace/invariants.hh"

#ifndef KLOC_TRACE_GOLDEN_DIR
#error "KLOC_TRACE_GOLDEN_DIR must point at tests/trace/golden"
#endif

namespace kloc {
namespace {

/** Full simulator stack, tracing enabled from the first allocation. */
struct TraceStack
{
    /** @param kernel_fast_first fast tier leads the kernel placement. */
    explicit TraceStack(bool kernel_fast_first)
        : machine(2, 1), tiers(machine), lru(machine, tiers),
          mem(machine, lru), migrator(machine, tiers, lru),
          heap(mem, tiers), kloc(heap, migrator)
    {
        TierSpec spec;
        spec.name = "fast";
        spec.capacity = 256 * kPageSize;
        spec.readLatency = Tick{80};
        spec.writeLatency = Tick{80};
        spec.readBandwidth = 10 * kGiB;
        spec.writeBandwidth = 10 * kGiB;
        fast = tiers.addTier(spec);
        spec.name = "slow";
        spec.capacity = 256 * kPageSize;
        spec.readLatency = Tick{300};
        spec.writeLatency = Tick{300};
        spec.readBandwidth = 2 * kGiB;
        spec.writeBandwidth = 2 * kGiB;
        slow = tiers.addTier(spec);

        const TierPreference kernel_pref =
            kernel_fast_first ? TierPreference{fast, slow}
                              : TierPreference{slow, fast};
        placement = std::make_unique<StaticPlacement>(
            kernel_pref, TierPreference{fast, slow});
        heap.setPolicy(placement.get());
        heap.setKlocInterface(true);
        kloc.setEnabled(true);
        kloc.setTierOrder({fast, slow});

        machine.tracer().setEnabled(true);
        checker = std::make_unique<InvariantChecker>(machine.tracer(),
                                                     /*strict=*/true);
    }

    Machine machine;
    TierManager tiers;
    LruEngine lru;
    MemAccessor mem;
    MigrationEngine migrator;
    KernelHeap heap;
    KlocManager kloc;
    std::unique_ptr<StaticPlacement> placement;
    std::unique_ptr<InvariantChecker> checker;
    TierId fast = kInvalidTier;
    TierId slow = kInvalidTier;
};

/**
 * Scenario A: a page-cache object born on the slow tier earns active
 * LRU standing through repeated touches and is promoted to fast
 * memory on the next tracked access.
 */
std::string
runTwoTierPromotion(std::string *report)
{
    TraceStack s(/*kernel_fast_first=*/false);

    Knode *knode = s.kloc.mapKnode(1);
    EXPECT_NE(knode, nullptr);
    s.kloc.markActive(knode);

    auto obj = std::make_unique<KernelObject>(KobjKind::PageCachePage);
    EXPECT_TRUE(s.heap.allocBacking(*obj, true, knode->id));
    s.kloc.addObject(knode, obj.get());
    Frame *frame = obj->frame();
    EXPECT_EQ(frame->tier, s.slow);

    // Two touches activate the frame; the touch after that finds it
    // active on a slow tier and promotes it.
    s.lru.onAccessed(frame);
    s.lru.onAccessed(frame);
    EXPECT_TRUE(frame->onActiveList);
    s.kloc.maybePromoteOnTouch(frame, knode);
    EXPECT_EQ(frame->tier, s.fast);
    EXPECT_TRUE(frame->onActiveList);  // promotion keeps standing

    s.kloc.removeObject(obj.get());
    s.heap.freeBacking(*obj);
    s.kloc.unmapKnode(knode);

    EXPECT_TRUE(s.checker->clean()) << s.checker->report();
    *report = s.checker->report();
    return s.machine.tracer().serialize();
}

/**
 * Scenario B: journalled metadata commits (records and buffer pages
 * freed inside the commit window, after the journal write's bio), and
 * the now-cold KLOC's data frame is evicted to the slow tier.
 */
std::string
runJournalBackedEviction(std::string *report)
{
    TraceStack s(/*kernel_fast_first=*/true);
    BlockDevice device(s.machine, BlockDevice::Config{});
    BlockLayer block(s.heap, &s.kloc, device);
    Journal journal(s.heap, &s.kloc, block);

    Knode *knode = s.kloc.mapKnode(7);
    EXPECT_NE(knode, nullptr);
    s.kloc.markActive(knode);

    // A data frame belonging to the same KLOC.
    auto data = std::make_unique<KernelObject>(KobjKind::PageCachePage);
    EXPECT_TRUE(s.heap.allocBacking(*data, true, knode->id));
    s.kloc.addObject(knode, data.get());
    EXPECT_EQ(data->frame()->tier, s.fast);

    // Log enough metadata to pin two journal buffer pages, then
    // commit in the foreground (fsync style).
    journal.logMetadata(knode, true, 7, 2 * kPageSize);
    EXPECT_GT(journal.liveRecords(), 0u);
    journal.commit(/*foreground=*/true);
    EXPECT_EQ(journal.liveRecords(), 0u);
    EXPECT_EQ(journal.committedTxs(), 1u);

    // The KLOC goes cold; its surviving objects demote.
    s.kloc.markInactive(knode);
    EXPECT_GT(s.kloc.migrateKnodeObjects(knode, s.slow), 0u);
    EXPECT_EQ(data->frame()->tier, s.slow);

    journal.detachInode(7);
    s.kloc.removeObject(data.get());
    s.heap.freeBacking(*data);
    s.kloc.unmapKnode(knode);

    EXPECT_TRUE(s.checker->clean()) << s.checker->report();
    *report = s.checker->report();
    return s.machine.tracer().serialize();
}

/**
 * Scenario C: a foreground write bio hits an injected device error
 * on its first attempt, backs off, and succeeds on the retry — the
 * trace brackets the whole episode (pin, submit, fault, retry,
 * complete, unpin) and the pin balances.
 */
std::string
runDeviceErrorRetry(std::string *report)
{
    TraceStack s(/*kernel_fast_first=*/true);
    BlockDevice device(s.machine, BlockDevice::Config{});
    BlockLayer block(s.heap, &s.kloc, device);

    FaultSpec spec;
    std::string err;
    EXPECT_TRUE(FaultSpec::parse("seed 7\ndevice_write oneshot 1\n",
                                 spec, &err)) << err;
    s.machine.faults().configure(spec);

    Knode *knode = s.kloc.mapKnode(3);
    EXPECT_NE(knode, nullptr);
    s.kloc.markActive(knode);

    const IoStatus status = block.submit(knode, true, /*sector=*/4096,
                                         kPageSize, /*write=*/true,
                                         /*foreground=*/true);
    EXPECT_EQ(status, IoStatus::Ok);
    EXPECT_EQ(device.ioErrors(), 1u);
    EXPECT_EQ(block.bioRetries(), 1u);
    EXPECT_EQ(block.bioErrors(), 0u);

    s.kloc.unmapKnode(knode);

    EXPECT_TRUE(s.checker->clean()) << s.checker->report();
    EXPECT_EQ(s.checker->outstandingPins(), 0u);
    *report = s.checker->report();
    return s.machine.tracer().serialize();
}

std::string
goldenPath(const std::string &name)
{
    return std::string(KLOC_TRACE_GOLDEN_DIR) + "/" + name + ".trace";
}

/**
 * Compare @p trace against the committed golden file, or rewrite the
 * file when KLOC_UPDATE_GOLDEN is set in the environment.
 */
void
compareGolden(const std::string &name, const std::string &trace)
{
    const std::string path = goldenPath(name);
    if (std::getenv("KLOC_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << trace;
        GTEST_LOG_(INFO) << "updated golden trace " << path;
        return;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " (run with KLOC_UPDATE_GOLDEN=1 to create)";
    std::ostringstream want;
    want << in.rdbuf();
    EXPECT_EQ(trace, want.str())
        << "trace diverged from " << path
        << "; if the change is intentional, regenerate with "
           "KLOC_UPDATE_GOLDEN=1";
}

TEST(GoldenTrace, TwoTierPromotionDeterministicAndGolden)
{
    std::string report1, report2;
    const std::string first = runTwoTierPromotion(&report1);
    const std::string second = runTwoTierPromotion(&report2);
    EXPECT_EQ(first, second) << "trace not deterministic across runs";
    EXPECT_GT(parseTrace(first).size(), 0u);
    compareGolden("two_tier_promotion", first);
}

TEST(GoldenTrace, JournalBackedEvictionDeterministicAndGolden)
{
    std::string report1, report2;
    const std::string first = runJournalBackedEviction(&report1);
    const std::string second = runJournalBackedEviction(&report2);
    EXPECT_EQ(first, second) << "trace not deterministic across runs";
    EXPECT_GT(parseTrace(first).size(), 0u);
    compareGolden("journal_backed_eviction", first);
}

TEST(GoldenTrace, DeviceErrorRetryDeterministicAndGolden)
{
    std::string report1, report2;
    const std::string first = runDeviceErrorRetry(&report1);
    const std::string second = runDeviceErrorRetry(&report2);
    EXPECT_EQ(first, second) << "trace not deterministic across runs";
    EXPECT_GT(parseTrace(first).size(), 0u);
    compareGolden("device_error_retry", first);
}

} // namespace
} // namespace kloc
