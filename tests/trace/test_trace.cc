/**
 * @file
 * Trace subsystem unit tests: ring-buffer behaviour, serializer
 * round-trips, listener delivery, and the invariant checker's
 * violation detection over synthetic event streams.
 */

#include <gtest/gtest.h>

#include "mem/frame.hh"
#include "sim/machine.hh"
#include "trace/invariants.hh"
#include "trace/trace.hh"

namespace kloc {
namespace {

constexpr uint64_t kAppClass = static_cast<uint64_t>(ObjClass::App);
constexpr uint64_t kJournalClass = static_cast<uint64_t>(ObjClass::Journal);

TEST(Tracer, DisabledEmitsNothing)
{
    Machine machine(1, 1);
    Tracer &tracer = machine.tracer();
    EXPECT_FALSE(tracer.enabled());
    tracer.emit(TraceEventType::FrameAlloc, 0, 1, 0, kAppClass);
    EXPECT_EQ(tracer.emitted(), 0u);
    EXPECT_TRUE(tracer.events().empty());
}

TEST(Tracer, StampsSeqAndVirtualTick)
{
    Machine machine(1, 1);
    Tracer &tracer = machine.tracer();
    tracer.setEnabled(true);
    tracer.emit(TraceEventType::FrameAlloc, 0, 1, 0, kAppClass);
    machine.charge(Tick{1234});
    tracer.emit(TraceEventType::FrameFree, 0, 1, 0, kAppClass);

    const auto events = tracer.events();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].seq, 0u);
    EXPECT_EQ(events[0].tick, 0);
    EXPECT_EQ(events[1].seq, 1u);
    EXPECT_EQ(events[1].tick, 1234);
    EXPECT_EQ(events[1].type, TraceEventType::FrameFree);
}

TEST(Tracer, RingWrapsKeepingNewest)
{
    Machine machine(1, 1);
    Tracer &tracer = machine.tracer();
    tracer.setCapacity(8);
    tracer.setEnabled(true);
    for (uint64_t i = 0; i < 12; ++i)
        tracer.emit(TraceEventType::LruActivate, 0, i);

    EXPECT_EQ(tracer.emitted(), 12u);
    EXPECT_EQ(tracer.dropped(), 4u);
    const auto events = tracer.events();
    ASSERT_EQ(events.size(), 8u);
    for (size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].seq, 4 + i);  // oldest four lost
        EXPECT_EQ(events[i].args[1], 4 + i);
    }
}

TEST(Tracer, ListenersSeeEveryEventPastWrap)
{
    Machine machine(1, 1);
    Tracer &tracer = machine.tracer();
    tracer.setCapacity(4);
    tracer.setEnabled(true);
    uint64_t delivered = 0;
    const int id = tracer.addListener(
        [&](const TraceEvent &) { ++delivered; });
    for (uint64_t i = 0; i < 10; ++i)
        tracer.emit(TraceEventType::LruActivate, 0, i);
    EXPECT_EQ(delivered, 10u);

    tracer.removeListener(id);
    tracer.emit(TraceEventType::LruActivate, 0, 10);
    EXPECT_EQ(delivered, 10u);
}

TEST(TraceBatch, BatchedEmissionMatchesDirectByteForByte)
{
    // The same emission sequence — including clock advances between
    // events — must serialize identically whether or not a batch
    // window is open: seq and tick are stamped at emit time.
    auto drive = [](Machine &machine, bool batched) {
        Tracer &tracer = machine.tracer();
        tracer.setEnabled(true);
        auto run = [&] {
            for (uint64_t i = 0; i < 20; ++i) {
                tracer.emit(TraceEventType::LruActivate, 0, i);
                machine.charge(Tick{100});
                tracer.emit(TraceEventType::LruDeactivate, 0, i);
            }
        };
        if (batched) {
            TraceBatch batch(tracer);
            run();
        } else {
            run();
        }
        return tracer.serialize();
    };
    Machine direct(1, 1);
    Machine batched(1, 1);
    EXPECT_EQ(drive(direct, false), drive(batched, true));
}

TEST(TraceBatch, DefersListenerDeliveryWithoutReordering)
{
    Machine machine(1, 1);
    Tracer &tracer = machine.tracer();
    tracer.setEnabled(true);
    std::vector<uint64_t> seqs;
    tracer.addListener(
        [&](const TraceEvent &event) { seqs.push_back(event.seq); });
    {
        TraceBatch batch(tracer);
        for (uint64_t i = 0; i < 5; ++i)
            tracer.emit(TraceEventType::LruActivate, 0, i);
        EXPECT_TRUE(seqs.empty()) << "listener ran inside the window";
        EXPECT_EQ(tracer.stagedCount(), 5u);
    }
    EXPECT_EQ(tracer.stagedCount(), 0u);
    EXPECT_EQ(seqs, (std::vector<uint64_t>{0, 1, 2, 3, 4}));
}

TEST(TraceBatch, WindowsNestAndFlushAtOutermostClose)
{
    Machine machine(1, 1);
    Tracer &tracer = machine.tracer();
    tracer.setEnabled(true);
    uint64_t delivered = 0;
    tracer.addListener([&](const TraceEvent &) { ++delivered; });
    {
        TraceBatch outer(tracer);
        tracer.emit(TraceEventType::LruActivate, 0, 1);
        {
            TraceBatch inner(tracer);
            tracer.emit(TraceEventType::LruActivate, 0, 2);
        }
        // Inner close must not flush: the outer window is open.
        EXPECT_EQ(delivered, 0u);
        EXPECT_EQ(tracer.stagedCount(), 2u);
    }
    EXPECT_EQ(delivered, 2u);
}

TEST(TraceBatch, OverflowAutoFlushesKeepingOrder)
{
    Machine machine(1, 1);
    Tracer &tracer = machine.tracer();
    tracer.setEnabled(true);
    const uint64_t total = 3 * Tracer::kBatchCapacity + 7;
    std::vector<uint64_t> seqs;
    tracer.addListener(
        [&](const TraceEvent &event) { seqs.push_back(event.seq); });
    {
        TraceBatch batch(tracer);
        for (uint64_t i = 0; i < total; ++i)
            tracer.emit(TraceEventType::LruActivate, 0, i);
        // The staging area filled and flushed mid-window.
        EXPECT_GE(seqs.size(), 3 * Tracer::kBatchCapacity);
    }
    ASSERT_EQ(seqs.size(), total);
    for (uint64_t i = 0; i < total; ++i)
        EXPECT_EQ(seqs[i], i);
    EXPECT_EQ(tracer.emitted(), total);
}

TEST(TraceBatch, MidWindowFlushExposesBufferedEvents)
{
    Machine machine(1, 1);
    Tracer &tracer = machine.tracer();
    tracer.setEnabled(true);
    TraceBatch batch(tracer);
    tracer.emit(TraceEventType::LruActivate, 0, 1);
    batch.flush();
    EXPECT_EQ(tracer.stagedCount(), 0u);
    const auto events = tracer.events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].args[1], 1u);
}

TEST(TraceSerializer, RoundTripsEveryEventType)
{
    for (unsigned t = 0; t < kNumTraceEventTypes; ++t) {
        TraceEvent event;
        event.seq = 42 + t;
        event.tick = Tick{1000000007LL + t};
        event.type = static_cast<TraceEventType>(t);
        const unsigned argc = traceEventArgCount(event.type);
        for (unsigned i = 0; i < argc; ++i)
            event.args[i] = (t + 1) * 1000 + i;

        const std::string line = traceEventToString(event);
        TraceEvent parsed;
        ASSERT_TRUE(parseTraceEvent(line, parsed)) << line;
        EXPECT_EQ(parsed, event) << line;
    }
}

TEST(TraceSerializer, SerializeParseWholeBuffer)
{
    Machine machine(1, 1);
    Tracer &tracer = machine.tracer();
    tracer.setEnabled(true);
    tracer.emit(TraceEventType::FrameAlloc, 0, 7, 0, kAppClass);
    machine.charge(Tick{50});
    tracer.emit(TraceEventType::MigStart, 0, 7, 1, 9);
    tracer.emit(TraceEventType::MigComplete, 1, 9, 1, 1);

    const std::string text = tracer.serialize();
    EXPECT_EQ(text.compare(0, 13, "# kloc-trace "), 0);
    const auto parsed = parseTrace(text);
    ASSERT_EQ(parsed.size(), 3u);
    EXPECT_EQ(parsed[0], tracer.events()[0]);
    EXPECT_EQ(parsed[2], tracer.events()[2]);
}

TEST(TraceSerializer, RejectsMalformedLines)
{
    TraceEvent out;
    EXPECT_FALSE(parseTraceEvent("", out));
    EXPECT_FALSE(parseTraceEvent("0 @0 not_an_event tier=0", out));
    EXPECT_FALSE(parseTraceEvent("0 0 frame_alloc tier=0", out));
    EXPECT_FALSE(parseTraceEvent("0 @0 frame_alloc tier=0 pfn=1", out));
    EXPECT_FALSE(
        parseTraceEvent("0 @0 lru_activate wrong=0 pfn=1", out));
}

TEST(TraceFrameKey, PacksAndUnpacks)
{
    const uint64_t key = traceFrameKey(3, Pfn{123456789ULL});
    EXPECT_EQ(traceKeyTier(key), 3);
    EXPECT_EQ(traceKeyPfn(key), 123456789ULL);
}

/** Checker harness: a tracer driven with hand-written event streams. */
class CheckerTest : public ::testing::Test
{
  protected:
    CheckerTest() : machine(1, 1), tracer(machine.tracer())
    {
        tracer.setEnabled(true);
    }

    void
    expectViolationContaining(const InvariantChecker &checker,
                              const char *needle)
    {
        ASSERT_FALSE(checker.clean()) << "expected a violation mentioning '"
                                      << needle << "'";
        bool found = false;
        for (const std::string &v : checker.violations())
            found = found || v.find(needle) != std::string::npos;
        EXPECT_TRUE(found) << checker.report();
    }

    Machine machine;
    Tracer &tracer;
};

TEST_F(CheckerTest, CleanFrameLifecycle)
{
    InvariantChecker checker(tracer, /*strict=*/true);
    tracer.emit(TraceEventType::FrameAlloc, 0, 5, 0, kAppClass);
    tracer.emit(TraceEventType::LruActivate, 0, 5);
    tracer.emit(TraceEventType::LruScan, 0, 1, 1, 0);
    tracer.emit(TraceEventType::LruDeactivate, 0, 5);
    tracer.emit(TraceEventType::FrameFree, 0, 5, 0, kAppClass);
    EXPECT_TRUE(checker.clean()) << checker.report();
    EXPECT_EQ(checker.eventsChecked(), 5u);
}

TEST_F(CheckerTest, DoubleAllocFlagged)
{
    InvariantChecker checker(tracer, true);
    tracer.emit(TraceEventType::FrameAlloc, 0, 5, 0, kAppClass);
    tracer.emit(TraceEventType::FrameAlloc, 0, 5, 0, kAppClass);
    expectViolationContaining(checker, "alloc over live frame");
}

TEST_F(CheckerTest, FreeWithInflightBioFlagged)
{
    InvariantChecker checker(tracer, true);
    tracer.emit(TraceEventType::FrameAlloc, 0, 5, 0, kAppClass);
    tracer.emit(TraceEventType::BioSubmit, 1, traceFrameKey(0, Pfn{5}), 100, 1);
    tracer.emit(TraceEventType::FrameFree, 0, 5, 0, kAppClass);
    expectViolationContaining(checker, "bios in");
}

TEST_F(CheckerTest, MigrationWithInflightIoFlagged)
{
    InvariantChecker checker(tracer, true);
    tracer.emit(TraceEventType::FrameAlloc, 0, 5, 0, kAppClass);
    tracer.emit(TraceEventType::BioSubmit, 1, traceFrameKey(0, Pfn{5}), 100, 0);
    tracer.emit(TraceEventType::MigStart, 0, 5, 1, 9);
    expectViolationContaining(checker, "migration of frame");
}

TEST_F(CheckerTest, MigrationRekeysFrame)
{
    InvariantChecker checker(tracer, true);
    tracer.emit(TraceEventType::FrameAlloc, 0, 5, 0, kAppClass);
    tracer.emit(TraceEventType::MigStart, 0, 5, 1, 9);
    tracer.emit(TraceEventType::MigComplete, 1, 9, 1, 1);
    // The frame now lives at (1, 9): freeing it there is clean, and
    // bios against the new key bind correctly.
    tracer.emit(TraceEventType::BioSubmit, 1, traceFrameKey(1, Pfn{9}), 0, 1);
    tracer.emit(TraceEventType::BioComplete, 1);
    tracer.emit(TraceEventType::FrameFree, 1, 9, 0, kAppClass);
    EXPECT_TRUE(checker.clean()) << checker.report();
}

TEST_F(CheckerTest, MigrationCompleteWithoutStartFlagged)
{
    InvariantChecker checker(tracer, true);
    tracer.emit(TraceEventType::FrameAlloc, 1, 9, 0, kAppClass);
    tracer.emit(TraceEventType::MigComplete, 1, 9, 1, 1);
    expectViolationContaining(checker, "without start");
}

TEST_F(CheckerTest, KnodeUnmapWithLiveObjectsFlagged)
{
    InvariantChecker checker(tracer, true);
    tracer.emit(TraceEventType::KnodeMap, 42);
    tracer.emit(TraceEventType::FrameAlloc, 0, 5, 0, kAppClass);
    tracer.emit(TraceEventType::ObjTrack, 42, 1, 0, 5);
    tracer.emit(TraceEventType::KnodeUnmap, 42);
    expectViolationContaining(checker, "live tracked objects");
}

TEST_F(CheckerTest, FrameFreedWhileTrackedFlagged)
{
    InvariantChecker checker(tracer, true);
    tracer.emit(TraceEventType::KnodeMap, 42);
    tracer.emit(TraceEventType::FrameAlloc, 0, 5, 0, kAppClass);
    tracer.emit(TraceEventType::ObjTrack, 42, 1, 0, 5);
    tracer.emit(TraceEventType::FrameFree, 0, 5, 0, kAppClass);
    expectViolationContaining(checker, "tracked knode objects");
    // And the later untrack sees a frame that no longer exists.
    tracer.emit(TraceEventType::ObjUntrack, 42, 1, 0, 5);
    expectViolationContaining(checker, "already freed");
}

TEST_F(CheckerTest, JournalFrameFreeRequiresWindow)
{
    InvariantChecker checker(tracer, true);
    // Arm the journal rule with a first (empty) commit window.
    tracer.emit(TraceEventType::JournalCommitStart, 1, 0, 0, 1);
    tracer.emit(TraceEventType::JournalCommitEnd, 1);

    tracer.emit(TraceEventType::FrameAlloc, 0, 5, 0, kJournalClass);
    tracer.emit(TraceEventType::FrameFree, 0, 5, 0, kJournalClass);
    expectViolationContaining(checker, "outside a journal");
}

TEST_F(CheckerTest, JournalFrameFreeInsideWindowClean)
{
    InvariantChecker checker(tracer, true);
    tracer.emit(TraceEventType::FrameAlloc, 0, 5, 0, kJournalClass);
    tracer.emit(TraceEventType::JournalCommitStart, 1, 1, 0, 1);
    tracer.emit(TraceEventType::FrameFree, 0, 5, 0, kJournalClass);
    tracer.emit(TraceEventType::JournalCommitEnd, 1);
    EXPECT_TRUE(checker.clean()) << checker.report();
}

TEST_F(CheckerTest, JournalRuleDormantUntilArmed)
{
    // Without any journal subsystem events, journal-class frames may
    // come and go freely (tests that slab-allocate JournalRecords
    // without a Journal are not buggy).
    InvariantChecker checker(tracer, true);
    tracer.emit(TraceEventType::FrameAlloc, 0, 5, 0, kJournalClass);
    tracer.emit(TraceEventType::FrameFree, 0, 5, 0, kJournalClass);
    EXPECT_TRUE(checker.clean()) << checker.report();
}

TEST_F(CheckerTest, LruCountMismatchFlagged)
{
    InvariantChecker checker(tracer, true);
    tracer.emit(TraceEventType::FrameAlloc, 0, 5, 0, kAppClass);
    tracer.emit(TraceEventType::FrameAlloc, 0, 6, 0, kAppClass);
    tracer.emit(TraceEventType::LruScan, 0, 2, 0, 2);
    EXPECT_TRUE(checker.clean()) << checker.report();
    tracer.emit(TraceEventType::LruScan, 0, 2, 1, 1);
    expectViolationContaining(checker, "LRU count mismatch");
}

TEST_F(CheckerTest, DoubleActivateFlagged)
{
    InvariantChecker checker(tracer, true);
    tracer.emit(TraceEventType::FrameAlloc, 0, 5, 0, kAppClass);
    tracer.emit(TraceEventType::LruActivate, 0, 5);
    tracer.emit(TraceEventType::LruActivate, 0, 5);
    expectViolationContaining(checker, "already-active");
}

TEST_F(CheckerTest, NonStrictAdoptsMidRunEntities)
{
    InvariantChecker checker(tracer, /*strict=*/false);
    // Events referencing frames/knodes that predate the attach.
    tracer.emit(TraceEventType::LruActivate, 0, 5);
    tracer.emit(TraceEventType::KnodeActivate, 42);
    tracer.emit(TraceEventType::ObjTrack, 42, 1, 0, 5);
    tracer.emit(TraceEventType::ObjUntrack, 42, 1, 0, 5);
    tracer.emit(TraceEventType::FrameFree, 0, 5, 0, kAppClass);
    // Count cross-checks are relaxed once adoption happened.
    tracer.emit(TraceEventType::LruScan, 0, 1, 7, 7);
    EXPECT_TRUE(checker.clean()) << checker.report();
}

TEST_F(CheckerTest, DetachStopsChecking)
{
    uint64_t checked = 0;
    {
        InvariantChecker checker(tracer, true);
        tracer.emit(TraceEventType::FrameAlloc, 0, 5, 0, kAppClass);
        checked = checker.eventsChecked();
    }
    // Emitting after the checker detached must not crash.
    tracer.emit(TraceEventType::FrameAlloc, 0, 5, 0, kAppClass);
    EXPECT_EQ(checked, 1u);
}

} // namespace
} // namespace kloc
