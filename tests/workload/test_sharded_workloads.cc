/**
 * @file
 * Sharded-workload port tests: every figure workload runs on
 * ShardContext bodies through ShardedWorkloadRunner and produces
 * byte-identical traces and identical simulated results at worker
 * counts 1, 2, and 4 — the same determinism contract the fleet
 * scenario pins in tests/sim/test_shard.cc, applied to the ports.
 *
 * Each workload also pins a compact golden digest (trace byte count,
 * FNV-1a hash, operations, elapsed) of its workers=1 reference run;
 * full traces would be megabytes across eight drivers, and the
 * digest still detects any byte-level change. Regenerate after an
 * intentional tracepoint or scenario change with:
 *
 *   KLOC_UPDATE_GOLDEN=1 ./test_workload \
 *       --gtest_filter='*ShardedWorkload*GoldenDigest*'
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "platform/two_tier.hh"
#include "trace/invariants.hh"
#include "workload/runner.hh"
#include "workload/workload.hh"

#ifndef KLOC_WORKLOAD_GOLDEN_DIR
#error "KLOC_WORKLOAD_GOLDEN_DIR must point at tests/workload/golden"
#endif

namespace kloc {
namespace {

WorkloadConfig
tinyConfig()
{
    WorkloadConfig config;
    config.scale = 1024;
    config.operations = 1200;
    config.seed = 7;
    return config;
}

std::unique_ptr<TwoTierPlatform>
makePlatform()
{
    TwoTierPlatform::Config config;
    config.scale = 256;
    auto platform = std::make_unique<TwoTierPlatform>(config);
    platform->applyStrategy(StrategyKind::Kloc);
    platform->sys().fs().startDaemons();
    return platform;
}

struct ShardedRun
{
    WorkloadResult result;
    ShardRunStats stats;
    std::string trace;
    std::string report;
    bool clean = false;
};

/** One traced sharded run on a fresh platform. */
ShardedRun
runSharded(const char *name, unsigned workers)
{
    auto platform = makePlatform();
    System &sys = platform->sys();
    sys.machine().tracer().setEnabled(true);
    InvariantChecker checker(sys.machine().tracer(), /*strict=*/true);

    auto workload = makeWorkload(name, tinyConfig());
    ShardPlan plan;
    plan.shards = 4;
    plan.workers = workers;
    ShardedWorkloadRunner runner(sys, plan);
    ShardedRun run;
    run.result = runner.run(*workload);
    run.stats = runner.stats();
    workload->teardown(sys);
    run.trace = sys.machine().tracer().serialize();
    run.report = checker.report();
    run.clean = checker.clean();
    return run;
}

/** FNV-1a over the serialized trace. */
uint64_t
fnv1a(const std::string &data)
{
    uint64_t hash = 1469598103934665603ULL;
    for (const char c : data) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ULL;
    }
    return hash;
}

std::string
digestOf(const ShardedRun &run)
{
    std::ostringstream out;
    out << "trace_bytes " << run.trace.size() << "\n"
        << "trace_fnv1a " << fnv1a(run.trace) << "\n"
        << "operations " << run.result.operations << "\n"
        << "elapsed " << run.result.elapsed << "\n";
    return out.str();
}

void
compareGoldenDigest(const std::string &name, const std::string &digest)
{
    const std::string path =
        std::string(KLOC_WORKLOAD_GOLDEN_DIR) + "/" + name + ".digest";
    if (std::getenv("KLOC_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << digest;
        GTEST_LOG_(INFO) << "updated golden digest " << path;
        return;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " (run with KLOC_UPDATE_GOLDEN=1 to create)";
    std::ostringstream want;
    want << in.rdbuf();
    EXPECT_EQ(digest, want.str())
        << "sharded run diverged from " << path
        << "; if the change is intentional, regenerate with "
           "KLOC_UPDATE_GOLDEN=1";
}

class ShardedWorkloadParam : public ::testing::TestWithParam<const char *>
{};

TEST_P(ShardedWorkloadParam, ByteIdenticalAcrossWorkerCounts)
{
    const ShardedRun serial = runSharded(GetParam(), 1);
    EXPECT_TRUE(serial.clean) << serial.report;
    EXPECT_GT(serial.result.operations, 0u);
    EXPECT_GT(serial.result.elapsed, 0);
    EXPECT_GT(serial.stats.epochs, 0u);
    EXPECT_GT(serial.stats.messages, 0u);

    for (const unsigned workers : {2u, 4u}) {
        const ShardedRun wide = runSharded(GetParam(), workers);
        EXPECT_TRUE(wide.clean) << wide.report;
        EXPECT_EQ(serial.trace, wide.trace)
            << GetParam() << " trace diverged at " << workers
            << " workers";
        EXPECT_EQ(serial.result.operations, wide.result.operations);
        EXPECT_EQ(serial.result.elapsed, wide.result.elapsed);
        EXPECT_EQ(serial.stats.epochs, wide.stats.epochs);
        EXPECT_EQ(serial.stats.messages, wide.stats.messages);
    }
}

TEST_P(ShardedWorkloadParam, GoldenDigest)
{
    const ShardedRun serial = runSharded(GetParam(), 1);
    compareGoldenDigest(GetParam(), digestOf(serial));
}

TEST_P(ShardedWorkloadParam, TeardownReleasesMemory)
{
    auto platform = makePlatform();
    System &sys = platform->sys();
    auto workload = makeWorkload(GetParam(), tinyConfig());
    ShardedWorkloadRunner runner(sys, ShardPlan{});
    runner.run(*workload);
    workload->teardown(sys);
    EXPECT_EQ(sys.heap().liveAppPages(), 0u) << "app arena leaked";
    EXPECT_EQ(sys.fs().cachedPages(), 0u) << "page cache leaked";
    EXPECT_EQ(sys.fs().liveInodes(), 0u) << "inodes leaked";
    EXPECT_EQ(sys.net().liveSockets(), 0u) << "sockets leaked";
}

INSTANTIATE_TEST_SUITE_P(AllPorted, ShardedWorkloadParam,
                         ::testing::Values("rocksdb", "redis", "filebench",
                                           "cassandra", "spark", "varmail",
                                           "webserver", "thrash"));

TEST(ShardedRunner, RejectsUnportedWorkload)
{
    /** A driver without a ShardContext port. */
    class SerialOnly : public Workload
    {
      public:
        using Workload::Workload;
        const char *name() const override { return "serial-only"; }
        void setup(System &) override {}
        WorkloadResult run(System &) override { return {}; }
    };

    auto platform = makePlatform();
    SerialOnly workload(tinyConfig());
    ShardedWorkloadRunner runner(platform->sys(), ShardPlan{});
    EXPECT_DEATH({ runner.run(workload); }, "no ShardContext port");
}

TEST(ShardedRunner, ShardCountIsPartOfTheScenario)
{
    // Unlike the worker count, the logical decomposition changes the
    // simulated run: 2-shard and 4-shard thrash are different
    // scenarios and must not be compared by the identity gates.
    auto run_with_shards = [](unsigned shards) {
        auto platform = makePlatform();
        auto workload = makeWorkload("thrash", tinyConfig());
        ShardPlan plan;
        plan.shards = shards;
        plan.workers = 1;
        ShardedWorkloadRunner runner(platform->sys(), plan);
        const WorkloadResult result = runner.run(*workload);
        workload->teardown(platform->sys());
        return result.elapsed;
    };
    EXPECT_NE(run_with_shards(2), run_with_shards(4));
}

} // namespace
} // namespace kloc
