/**
 * @file
 * Workload utility tests: the FdCache (RocksDB-style table cache),
 * arena helpers, and the measured-run protocol.
 */

#include <gtest/gtest.h>

#include "platform/two_tier.hh"
#include "workload/runner.hh"
#include "workload/workload.hh"

namespace kloc {
namespace {

std::unique_ptr<TwoTierPlatform>
makePlatform()
{
    TwoTierPlatform::Config config;
    config.scale = 256;
    auto platform = std::make_unique<TwoTierPlatform>(config);
    platform->applyStrategy(StrategyKind::Kloc);
    return platform;
}

TEST(FdCacheTest, OpensOnDemandAndReusesHits)
{
    auto platform = makePlatform();
    System &sys = platform->sys();
    sys.fs().close(sys.fs().create("a"));
    sys.fs().close(sys.fs().create("b"));

    FdCache cache(4);
    const int fd_a = cache.get(sys, "a");
    ASSERT_GE(fd_a, 0);
    EXPECT_EQ(cache.get(sys, "a"), fd_a) << "hit must reuse the fd";
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_GE(cache.get(sys, "b"), 0);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.get(sys, "missing"), -1);
    cache.clear(sys);
    EXPECT_EQ(cache.size(), 0u);
    sys.fs().unlink("a");
    sys.fs().unlink("b");
}

TEST(FdCacheTest, EvictsLruAndClosesFiles)
{
    auto platform = makePlatform();
    System &sys = platform->sys();
    for (int i = 0; i < 6; ++i)
        sys.fs().close(sys.fs().create("f" + std::to_string(i)));

    FdCache cache(3);
    for (int i = 0; i < 6; ++i)
        cache.get(sys, "f" + std::to_string(i));
    EXPECT_EQ(cache.size(), 3u);
    // The evicted files' knodes went inactive again.
    EXPECT_FALSE(sys.fs().knodeOf("f0")->inuse);
    EXPECT_TRUE(sys.fs().knodeOf("f5")->inuse);
    cache.clear(sys);
    for (int i = 0; i < 6; ++i)
        sys.fs().unlink("f" + std::to_string(i));
}

TEST(FdCacheTest, DropClosesBeforeUnlink)
{
    auto platform = makePlatform();
    System &sys = platform->sys();
    sys.fs().close(sys.fs().create("victim"));
    FdCache cache(4);
    cache.get(sys, "victim");
    EXPECT_FALSE(sys.fs().unlink("victim")) << "open via cache";
    cache.drop(sys, "victim");
    EXPECT_TRUE(sys.fs().unlink("victim"));
    cache.drop(sys, "victim");  // idempotent on absent names
}

TEST(RunnerProtocol, QuiesceDrainsDirtyState)
{
    auto platform = makePlatform();
    System &sys = platform->sys();
    sys.fs().startDaemons();
    WorkloadConfig config;
    config.scale = 1024;
    config.operations = 500;
    auto workload = makeWorkload("rocksdb", config);
    runMeasured(sys, *workload);
    // After setup+quiesce+run, another quiesce leaves no dirty
    // backlog: a syncAll finds nothing to write.
    sys.fs().syncAll();
    const uint64_t wb = sys.fs().stats().writebackPages;
    sys.fs().syncAll();
    EXPECT_EQ(sys.fs().stats().writebackPages, wb);
    workload->teardown(sys);
}

TEST(RunnerProtocol, SetCpusRedirectsRotation)
{
    auto platform = makePlatform();
    System &sys = platform->sys();
    WorkloadConfig config;
    config.scale = 1024;
    config.operations = 64;
    config.cpus = {2};
    auto workload = makeWorkload("filebench", config);
    workload->setup(sys);
    workload->run(sys);
    EXPECT_EQ(sys.machine().currentCpu(), 2u);
    workload->setCpus({5});
    workload->run(sys);
    EXPECT_EQ(sys.machine().currentCpu(), 5u);
    workload->teardown(sys);
}

} // namespace
} // namespace kloc
