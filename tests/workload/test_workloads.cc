/**
 * @file
 * Workload driver tests: every Table 3 driver runs at a tiny scale,
 * produces operations and virtual time, exercises the expected
 * kernel subsystems, is deterministic for a fixed seed, and tears
 * down without leaking simulated memory.
 */

#include <gtest/gtest.h>

#include "platform/two_tier.hh"
#include "workload/runner.hh"
#include "workload/workload.hh"

namespace kloc {
namespace {

WorkloadConfig
tinyConfig()
{
    WorkloadConfig config;
    config.scale = 1024;
    config.operations = 2000;
    config.seed = 7;
    return config;
}

std::unique_ptr<TwoTierPlatform>
makePlatform()
{
    TwoTierPlatform::Config config;
    config.scale = 256;
    auto platform = std::make_unique<TwoTierPlatform>(config);
    platform->applyStrategy(StrategyKind::Kloc);
    platform->sys().fs().startDaemons();
    return platform;
}

class WorkloadParam : public ::testing::TestWithParam<const char *>
{};

TEST_P(WorkloadParam, RunsAndProducesThroughput)
{
    auto platform = makePlatform();
    System &sys = platform->sys();
    auto workload = makeWorkload(GetParam(), tinyConfig());
    const WorkloadResult result = runMeasured(sys, *workload);
    EXPECT_GT(result.operations, 0u);
    EXPECT_GT(result.elapsed, 0);
    EXPECT_GT(result.throughput(), 0.0);
    workload->teardown(sys);
}

TEST_P(WorkloadParam, DeterministicForSeed)
{
    Tick elapsed[2];
    for (int i = 0; i < 2; ++i) {
        auto platform = makePlatform();
        auto workload = makeWorkload(GetParam(), tinyConfig());
        elapsed[i] = runMeasured(platform->sys(), *workload).elapsed;
        workload->teardown(platform->sys());
    }
    EXPECT_EQ(elapsed[0], elapsed[1])
        << "same seed must give bit-identical virtual time";
}

TEST_P(WorkloadParam, TeardownReleasesMemory)
{
    auto platform = makePlatform();
    System &sys = platform->sys();
    auto workload = makeWorkload(GetParam(), tinyConfig());
    runMeasured(sys, *workload);
    workload->teardown(sys);
    EXPECT_EQ(sys.heap().liveAppPages(), 0u) << "app arena leaked";
    EXPECT_EQ(sys.fs().cachedPages(), 0u) << "page cache leaked";
    EXPECT_EQ(sys.fs().liveInodes(), 0u) << "inodes leaked";
    EXPECT_EQ(sys.net().liveSockets(), 0u) << "sockets leaked";
}

INSTANTIATE_TEST_SUITE_P(Table3, WorkloadParam,
                         ::testing::Values("rocksdb", "redis", "filebench",
                                           "cassandra", "spark",
                                           "varmail", "webserver"));

TEST(WorkloadShape, WebserverChurnsSocketKlocs)
{
    auto platform = makePlatform();
    System &sys = platform->sys();
    auto workload = makeWorkload("webserver", tinyConfig());
    runMeasured(sys, *workload);
    const KlocStats &stats = sys.kloc().stats();
    // Most requests create and destroy a whole socket KLOC.
    EXPECT_GT(stats.knodesDeleted, 500u);
    EXPECT_GT(sys.net().stats().packetsDelivered, 0u);
    EXPECT_GT(sys.fs().stats().reads, 0u);
    workload->teardown(sys);
}

TEST(WorkloadShape, VarmailChurnsKnodes)
{
    auto platform = makePlatform();
    System &sys = platform->sys();
    WorkloadConfig config = tinyConfig();
    auto workload = makeWorkload("varmail", config);
    runMeasured(sys, *workload);
    const KlocStats &stats = sys.kloc().stats();
    EXPECT_GT(stats.knodesCreated, 100u)
        << "varmail must create many KLOCs";
    EXPECT_GT(stats.knodesDeleted, 50u)
        << "varmail must delete many KLOCs";
    // Dir buffers and dentries were exercised.
    EXPECT_GT(sys.heap().objLifetimeHist(KobjKind::DirBuffer)
                  .dist()
                  .count(),
              0u);
    EXPECT_GT(sys.heap().objLifetimeHist(KobjKind::Dentry).dist().count(),
              0u);
    workload->teardown(sys);
}

TEST(WorkloadShape, RocksDbIsFilesystemIntensive)
{
    auto platform = makePlatform();
    System &sys = platform->sys();
    auto workload = makeWorkload("rocksdb", tinyConfig());
    runMeasured(sys, *workload);
    EXPECT_GT(sys.fs().stats().writes, 0u);
    EXPECT_GT(sys.fs().stats().reads, 0u);
    EXPECT_GT(sys.fs().journal().committedTxs(), 0u);
    EXPECT_GT(sys.tiers().cumulativeAllocPages(ObjClass::PageCache), 0u);
    workload->teardown(sys);
}

TEST(WorkloadShape, RedisIsNetworkIntensive)
{
    auto platform = makePlatform();
    System &sys = platform->sys();
    auto workload = makeWorkload("redis", tinyConfig());
    runMeasured(sys, *workload);
    EXPECT_GT(sys.net().stats().packetsDelivered, 0u);
    EXPECT_GT(sys.net().stats().packetsSent, 0u);
    EXPECT_GT(sys.tiers().cumulativeAllocPages(ObjClass::SockBuf), 0u);
    // ...and periodically checkpoints to disk.
    EXPECT_GT(sys.fs().stats().writes, 0u);
    workload->teardown(sys);
}

TEST(WorkloadShape, CassandraHitsItsRowCache)
{
    auto platform = makePlatform();
    System &sys = platform->sys();
    WorkloadConfig config = tinyConfig();
    auto workload = makeWorkload("cassandra", config);
    runMeasured(sys, *workload);
    // The app cache absorbs reads: user references dominate compared
    // to a pure filesystem workload's read-miss traffic.
    EXPECT_GT(sys.machine().userRefs(), 0u);
    EXPECT_GT(sys.net().stats().packetsDelivered, 0u);
    workload->teardown(sys);
}

TEST(WorkloadShape, SparkWritesAndReadsItsPartitions)
{
    auto platform = makePlatform();
    System &sys = platform->sys();
    auto workload = makeWorkload("spark", tinyConfig());
    const WorkloadResult result = runMeasured(sys, *workload);
    // generate writes + sort reads every partition.
    EXPECT_GT(sys.fs().stats().creates, 16u);
    EXPECT_GT(result.operations, 0u);
    workload->teardown(sys);
}

TEST(WorkloadShape, SmallInputShrinksFootprint)
{
    WorkloadConfig large = tinyConfig();
    WorkloadConfig small = tinyConfig();
    small.smallInput = true;

    uint64_t pages[2];
    int i = 0;
    for (const auto &config : {large, small}) {
        auto platform = makePlatform();
        System &sys = platform->sys();
        auto workload = makeWorkload("rocksdb", config);
        workload->setup(sys);
        pages[i++] =
            sys.tiers().cumulativeAllocPages(ObjClass::PageCache);
        workload->teardown(sys);
    }
    EXPECT_GT(pages[0], pages[1])
        << "Large (40GB) input must allocate more than Small (10GB)";
}

TEST(WorkloadShape, UnknownNameDies)
{
    EXPECT_DEATH(
        { makeWorkload("postgres", tinyConfig()); }, "unknown workload");
}

} // namespace
} // namespace kloc
