#include "tools/klint/cache.hh"

#include <fstream>
#include <sstream>

namespace klint {

namespace {

constexpr const char *kMagic = "klint-cache-v1";

/** Fields never contain whitespace (identifiers and root paths), so
 *  a space-separated line format round-trips exactly; empty strings
 *  are encoded as "-". */
std::string
enc(const std::string &s)
{
    return s.empty() ? "-" : s;
}

std::string
dec(const std::string &s)
{
    return s == "-" ? "" : s;
}

} // namespace

bool
SymbolCache::load(const std::string &path)
{
    _entries.clear();
    std::ifstream in(path);
    if (!in)
        return false;
    std::string line;
    if (!std::getline(in, line) || line != kMagic)
        return false;

    std::string file;
    Entry entry;
    FunctionDef *fn = nullptr;
    auto flush = [&]() {
        if (!file.empty())
            _entries[file] = std::move(entry);
        entry = Entry{};
        fn = nullptr;
    };

    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string tag;
        if (!(ls >> tag))
            continue;
        if (tag == "F") {
            flush();
            if (!(ls >> file >> entry.hash)) {
                _entries.clear();
                return false;
            }
        } else if (tag == "f") {
            std::string name, qual, via;
            int ln, b, e, lambda;
            if (!(ls >> name >> qual >> ln >> b >> e >> lambda >> via)) {
                _entries.clear();
                return false;
            }
            entry.index.functions.push_back({});
            fn = &entry.index.functions.back();
            fn->name = dec(name);
            fn->qualifier = dec(qual);
            fn->line = ln;
            fn->bodyBegin = b;
            fn->bodyEnd = e;
            fn->isLambda = lambda != 0;
            fn->registeredVia = dec(via);
        } else if (tag == "p" && fn) {
            std::string name;
            int byRef;
            if (ls >> name >> byRef)
                fn->params.push_back({dec(name), byRef != 0});
        } else if (tag == "c" && fn) {
            CallSite call;
            std::string callee, recv;
            int indirect, nargs;
            if (!(ls >> callee >> call.line >> call.tok >> indirect >>
                  recv >> nargs))
                continue;
            call.callee = dec(callee);
            call.indirect = indirect != 0;
            call.recvRoot = dec(recv);
            for (int k = 0; k < nargs; ++k) {
                std::string root;
                ls >> root;
                call.argRoots.push_back(dec(root));
            }
            fn->calls.push_back(std::move(call));
        } else if (tag == "m" && fn) {
            Mutation m;
            std::string root, method;
            if (ls >> root >> method >> m.line >> m.tok) {
                m.root = dec(root);
                m.method = dec(method);
                fn->mutations.push_back(std::move(m));
            }
        } else if (tag == "a" && fn) {
            std::string local, root;
            if (ls >> local >> root)
                fn->aliases[dec(local)] = dec(root);
        }
    }
    flush();
    return true;
}

bool
SymbolCache::store(const std::string &path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    out << kMagic << "\n";
    for (const auto &[file, entry] : _entries) {
        out << "F " << file << " " << entry.hash << "\n";
        for (const FunctionDef &fn : entry.index.functions) {
            out << "f " << enc(fn.name) << " " << enc(fn.qualifier)
                << " " << fn.line << " " << fn.bodyBegin << " "
                << fn.bodyEnd << " " << (fn.isLambda ? 1 : 0) << " "
                << enc(fn.registeredVia) << "\n";
            for (const Param &p : fn.params)
                out << "p " << enc(p.name) << " " << (p.byRef ? 1 : 0)
                    << "\n";
            for (const CallSite &c : fn.calls) {
                out << "c " << enc(c.callee) << " " << c.line << " "
                    << c.tok << " " << (c.indirect ? 1 : 0) << " "
                    << enc(c.recvRoot) << " " << c.argRoots.size();
                for (const std::string &root : c.argRoots)
                    out << " " << enc(root);
                out << "\n";
            }
            for (const Mutation &m : fn.mutations)
                out << "m " << enc(m.root) << " " << enc(m.method)
                    << " " << m.line << " " << m.tok << "\n";
            for (const auto &[local, root] : fn.aliases)
                out << "a " << enc(local) << " " << enc(root) << "\n";
        }
    }
    return static_cast<bool>(out);
}

const FileIndex *
SymbolCache::lookup(const std::string &file, uint64_t hash) const
{
    auto it = _entries.find(file);
    if (it == _entries.end() || it->second.hash != hash)
        return nullptr;
    return &it->second.index;
}

} // namespace klint
