/**
 * @file
 * Indexed-symbol cache keyed by file hash.
 *
 * Indexing (function extraction, alias analysis, call/mutation
 * summaries) is the expensive part of a klint run as the tree grows.
 * The cache persists each file's FileIndex next to its FNV-1a
 * content hash; an incremental run re-indexes only files whose hash
 * changed and reuses the serialized summaries for the rest, keeping
 * warm runs under a second.
 *
 * The format is a versioned, line-oriented text file. Any parse
 * error or version mismatch discards the cache wholesale — the
 * cache is an accelerator, never a source of truth.
 */

#ifndef KLOC_TOOLS_KLINT_CACHE_HH
#define KLOC_TOOLS_KLINT_CACHE_HH

#include <cstdint>
#include <map>
#include <string>

#include "tools/klint/indexer.hh"

namespace klint {

class SymbolCache
{
  public:
    struct Entry
    {
        uint64_t hash = 0;
        FileIndex index;
    };

    /** Load from @p path; false (and empty cache) on any mismatch. */
    bool load(const std::string &path);

    /** Persist the current entries to @p path (best-effort). */
    bool store(const std::string &path) const;

    /** Cached index for (path, hash), or nullptr on miss. */
    const FileIndex *lookup(const std::string &file,
                            uint64_t hash) const;

    void
    put(const std::string &file, uint64_t hash, FileIndex index)
    {
        _entries[file] = Entry{hash, std::move(index)};
    }

    size_t size() const { return _entries.size(); }

  private:
    std::map<std::string, Entry> _entries;
};

} // namespace klint

#endif // KLOC_TOOLS_KLINT_CACHE_HH
