#include "tools/klint/callgraph.hh"

namespace klint {

namespace {

bool
isMemberRoot(const std::string &root)
{
    return !root.empty() && root[0] == '_';
}

bool
isParamRoot(const std::string &root)
{
    return !root.empty() && root[0] == '%';
}

/**
 * Member-root identity is (defining file, name): a `_records` in the
 * journal is never the `_records` of some other subsystem.
 */
std::string
qualify(const std::string &file, const std::string &root)
{
    return file + "::" + root;
}

} // namespace

void
CallGraph::build(
    const std::vector<std::pair<std::string, const FileIndex *>> &files)
{
    for (const auto &[path, index] : files) {
        for (const FunctionDef &fn : index->functions) {
            const int id = static_cast<int>(_nodes.size());
            _nodes.push_back({&fn, path});
            if (!fn.isLambda)
                _byName[fn.name].push_back(id);
            if (!fn.registeredVia.empty())
                _pool.push_back(id);
        }
    }

    _mutRoots.resize(_nodes.size());
    _mutParams.resize(_nodes.size());

    // Seed with direct mutations.
    for (size_t f = 0; f < _nodes.size(); ++f) {
        for (const Mutation &m : _nodes[f].def->mutations) {
            if (isMemberRoot(m.root)) {
                const std::string q = qualify(_nodes[f].file, m.root);
                _mutRoots[f].insert(q);
                _via.emplace(std::make_pair(static_cast<int>(f), q),
                             m.method + "()");
            } else if (isParamRoot(m.root)) {
                _mutParams[f].insert(std::stoi(m.root.substr(1)));
            }
        }
    }

    // Fixpoint: propagate callee mutations to callers, binding
    // by-reference parameter mutations through argument roots.
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t f = 0; f < _nodes.size(); ++f) {
            for (const CallSite &call : _nodes[f].def->calls) {
                for (const int g : targets(call)) {
                    if (g == static_cast<int>(f))
                        continue;  // self-edges propagate nothing new
                    // Snapshot the callee's sets: on a mutual-recursion
                    // edge the insert below would otherwise write the
                    // container being walked.
                    const std::vector<std::string> calleeRoots(
                        _mutRoots[g].begin(), _mutRoots[g].end());
                    const std::vector<int> calleeParams(
                        _mutParams[g].begin(), _mutParams[g].end());
                    for (const std::string &root : calleeRoots) {
                        if (_mutRoots[f].insert(root).second) {
                            changed = true;
                            _via.emplace(
                                std::make_pair(static_cast<int>(f),
                                               root),
                                call.callee);
                        }
                    }
                    for (const int k : calleeParams) {
                        if (k >= static_cast<int>(
                                     call.argRoots.size()))
                            continue;
                        const std::string &bound = call.argRoots[k];
                        if (isMemberRoot(bound)) {
                            const std::string q =
                                qualify(_nodes[f].file, bound);
                            if (_mutRoots[f].insert(q).second) {
                                changed = true;
                                _via.emplace(
                                    std::make_pair(
                                        static_cast<int>(f), q),
                                    call.callee);
                            }
                        } else if (isParamRoot(bound)) {
                            if (_mutParams[f]
                                    .insert(std::stoi(bound.substr(1)))
                                    .second)
                                changed = true;
                        }
                    }
                }
            }
        }
    }
}

const std::vector<int> &
CallGraph::byName(const std::string &name) const
{
    static const std::vector<int> kNone;
    auto it = _byName.find(name);
    return it == _byName.end() ? kNone : it->second;
}

const std::set<std::string> &
CallGraph::mutatedRoots(int node) const
{
    return _mutRoots[static_cast<size_t>(node)];
}

const std::set<int> &
CallGraph::mutatedParams(int node) const
{
    return _mutParams[static_cast<size_t>(node)];
}

std::vector<int>
CallGraph::targets(const CallSite &call) const
{
    // Name resolution prunes candidates whose parameter count does
    // not match the argument count: `hook->unlink()` is never
    // `FileSystem::unlink(path)`. Trailing default arguments are a
    // documented blind spot. Pool edges skip the filter — a slot
    // dispatch rarely spells out the stored lambda's signature.
    std::vector<int> out;
    for (const int g : byName(call.callee)) {
        if (static_cast<int>(_nodes[g].def->params.size()) ==
            call.argCount)
            out.push_back(g);
    }
    if (call.indirect)
        out.insert(out.end(), _pool.begin(), _pool.end());
    return out;
}

bool
CallGraph::callMutates(int caller, const CallSite &call,
                       const std::string &root) const
{
    const std::string q = qualify(_nodes[caller].file, root);
    for (const int g : targets(call)) {
        if (_mutRoots[g].count(q))
            return true;
        // Binding: the callee mutates a by-ref parameter we pass
        // this very container through.
        for (const int k : _mutParams[g]) {
            if (k < static_cast<int>(call.argRoots.size()) &&
                call.argRoots[k] == root)
                return true;
        }
    }
    return false;
}

std::string
CallGraph::witness(int caller, const CallSite &call,
                   const std::string &root) const
{
    const std::string q = qualify(_nodes[caller].file, root);
    for (const int g : targets(call)) {
        if (!_mutRoots[g].count(q))
            continue;
        std::string chain = call.callee;
        int at = g;
        // Follow the via-links; each hop names the next callee.
        for (int hops = 0; hops < 8; ++hops) {
            auto it = _via.find({at, q});
            if (it == _via.end())
                break;
            chain += " -> " + it->second;
            if (it->second.size() >= 2 &&
                it->second.compare(it->second.size() - 2, 2, "()") == 0)
                break;  // reached the direct mutator
            // Next hop: any target of `at` still holding the root.
            const std::vector<int> &cands = byName(it->second);
            int next = -1;
            for (const int c : cands) {
                if (_mutRoots[c].count(q)) {
                    next = c;
                    break;
                }
            }
            if (next < 0) {
                // The hop went through the callback pool.
                for (const int c : _pool) {
                    if (_mutRoots[c].count(q)) {
                        next = c;
                        break;
                    }
                }
                if (next < 0)
                    break;
            }
            at = next;
        }
        return chain;
    }
    for (const int g : targets(call)) {
        for (const int k : _mutParams[g]) {
            if (k < static_cast<int>(call.argRoots.size()) &&
                call.argRoots[k] == root)
                return call.callee + " (mutates its parameter " +
                       std::to_string(k) + ")";
        }
    }
    return call.callee;
}

} // namespace klint
