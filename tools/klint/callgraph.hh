/**
 * @file
 * Project-wide call graph over the indexed function definitions.
 *
 * Resolution is by unqualified name (an over-approximation: a call
 * to `free` reaches every indexed function named `free`), plus two
 * callback edges that make observer-heavy code analysable:
 *
 *   - every lambda passed to a registration API (`add*Observer`,
 *     `set*Hook`, `register*`, `schedule`) joins the *callback
 *     pool*;
 *   - every *indirect* call site (a call through a slot named
 *     fn/cb/probe/callback/handler/hook, or directly through a
 *     stored `_fnPtr` member) is an edge to the whole pool.
 *
 * On top of the graph a fixpoint computes, per function, the set of
 * container roots it can mutate *transitively* — including mutations
 * of by-reference parameters bound to member containers at call
 * sites. `witness()` reconstructs a human-readable call chain for
 * diagnostics.
 *
 * Member roots are qualified by their defining *file*
 * ("src/fs/journal.cc::_records") when they enter the graph, so a
 * `_records` member in one subsystem never aliases a same-named
 * member in another. The known blind spot: a class whose methods are
 * split across files sees its members as two distinct roots.
 */

#ifndef KLOC_TOOLS_KLINT_CALLGRAPH_HH
#define KLOC_TOOLS_KLINT_CALLGRAPH_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/klint/indexer.hh"

namespace klint {

class CallGraph
{
  public:
    struct Node
    {
        const FunctionDef *def;
        std::string file;  ///< repo-relative path
    };

    /** Build over the given (file, index) pairs. */
    void build(const std::vector<std::pair<std::string,
                                           const FileIndex *>> &files);

    const std::vector<Node> &nodes() const { return _nodes; }

    /** Indices of functions with unqualified name @p name. */
    const std::vector<int> &byName(const std::string &name) const;

    /** File-qualified member roots @p node can mutate, transitively. */
    const std::set<std::string> &mutatedRoots(int node) const;

    /** By-ref parameter indices @p node can mutate, transitively. */
    const std::set<int> &mutatedParams(int node) const;

    /**
     * Can the call site @p call (inside @p caller) reach a mutator
     * of @p root (unqualified, resolved in the caller's file)?
     * Checks both the callees' transitive member mutations and
     * by-reference argument binding at this site.
     */
    bool callMutates(int caller, const CallSite &call,
                     const std::string &root) const;

    /**
     * Human-readable chain for a positive callMutates() answer,
     * e.g. "cpuWork -> charge -> runDue -> <callback pool> ->
     * cacheOnCpu".
     */
    std::string witness(int caller, const CallSite &call,
                        const std::string &root) const;

  private:
    std::vector<int>
    targets(const CallSite &call) const;

    std::vector<Node> _nodes;
    std::map<std::string, std::vector<int>> _byName;
    std::vector<int> _pool;  ///< registered callbacks
    std::vector<std::set<std::string>> _mutRoots;
    std::vector<std::set<int>> _mutParams;
    /** (node, root) -> next hop description, for witness chains. */
    std::map<std::pair<int, std::string>, std::string> _via;
};

} // namespace klint

#endif // KLOC_TOOLS_KLINT_CALLGRAPH_HH
