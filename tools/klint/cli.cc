#include "tools/klint/cli.hh"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "tools/klint/klint.hh"

namespace klint {

namespace {

constexpr const char *kUsage =
    "usage: klint [--root=PATH] [--rules=a,b,c] [--cache=PATH]\n"
    "             [--json] [--github] [--list-rules]\n";

/** JSON string escaping for the --json report. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                std::ostringstream hex;
                hex << "\\u" << std::hex << std::setw(4)
                    << std::setfill('0') << static_cast<int>(c);
                out += hex.str();
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Stable finding ID: hash of rule, file and message — deliberately
 * not the line number, so a finding keeps its identity when
 * unrelated edits shift the file, and CI can diff runs.
 */
std::string
findingId(const Finding &finding)
{
    const uint64_t hash =
        fnv1a(finding.rule + "|" + finding.file + "|" + finding.message);
    std::ostringstream hex;
    hex << std::hex << std::setw(16) << std::setfill('0') << hash;
    return hex.str();
}

void
printJson(const std::vector<Finding> &findings, const RunStats &stats,
          const std::string &root, std::ostream &out)
{
    out << "{\n"
        << "  \"version\": 1,\n"
        << "  \"root\": \"" << jsonEscape(root) << "\",\n"
        << "  \"findings\": [";
    for (size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        out << (i ? ",\n    {" : "\n    {")
            << "\"id\": \"" << findingId(f) << "\", "
            << "\"rule\": \"" << jsonEscape(f.rule) << "\", "
            << "\"file\": \"" << jsonEscape(f.file) << "\", "
            << "\"line\": " << f.line << ", "
            << "\"message\": \"" << jsonEscape(f.message) << "\"}";
    }
    out << (findings.empty() ? "],\n" : "\n  ],\n")
        << "  \"stats\": {\"filesScanned\": " << stats.filesScanned
        << ", \"indexCacheHits\": " << stats.indexCacheHits
        << ", \"indexCacheMisses\": " << stats.indexCacheMisses
        << "}\n"
        << "}\n";
}

} // namespace

int
cliMain(const std::vector<std::string> &args, std::ostream &out,
        std::ostream &err)
{
    Options opts;
    RunStats stats;
    opts.stats = &stats;
    bool json = false;
    bool github = false;

    for (const std::string &arg : args) {
        if (arg.rfind("--root=", 0) == 0) {
            opts.root = arg.substr(7);
        } else if (arg.rfind("--rules=", 0) == 0) {
            const std::string list = arg.substr(8);
            size_t pos = 0;
            while (pos <= list.size()) {
                size_t comma = list.find(',', pos);
                if (comma == std::string::npos)
                    comma = list.size();
                if (comma > pos)
                    opts.rules.push_back(list.substr(pos, comma - pos));
                pos = comma + 1;
            }
        } else if (arg.rfind("--cache=", 0) == 0) {
            opts.cachePath = arg.substr(8);
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--github") {
            github = true;
        } else if (arg == "--list-rules") {
            for (const Rule &rule : ruleCatalogue()) {
                out << rule.name;
                for (size_t pad = std::string(rule.name).size();
                     pad < 22; ++pad)
                    out << ' ';
                out << rule.summary << "\n";
            }
            return 0;
        } else if (arg == "-h" || arg == "--help") {
            out << kUsage;
            return 0;
        } else {
            err << "klint: unknown argument '" << arg << "'\n" << kUsage;
            return 2;
        }
    }

    const std::vector<Finding> findings = runKlint(opts);

    if (json) {
        printJson(findings, stats, opts.root, out);
    } else {
        for (const Finding &f : findings) {
            if (github) {
                // GitHub Actions annotation: surfaces on the PR diff.
                out << "::error file=" << f.file << ",line=" << f.line
                    << ",title=klint(" << f.rule << ")::" << f.message
                    << "\n";
            } else {
                out << f.file << ":" << f.line << ": [" << f.rule
                    << "] " << f.message << "\n";
            }
        }
    }

    if (!findings.empty()) {
        err << "klint: " << findings.size() << " finding"
            << (findings.size() == 1 ? "" : "s") << "\n";
        return 1;
    }
    return 0;
}

} // namespace klint
