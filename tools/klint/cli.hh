/**
 * @file
 * klint command-line front end, split from main() so the test suite
 * can drive argument parsing, output formats and exit codes through
 * in-memory streams.
 *
 * Exit codes: 0 = clean, 1 = findings, 2 = usage error.
 */

#ifndef KLOC_TOOLS_KLINT_CLI_HH
#define KLOC_TOOLS_KLINT_CLI_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace klint {

/**
 * Run the CLI with @p args (argv[1..]), writing reports to @p out
 * and diagnostics to @p err. Returns the process exit code.
 */
int cliMain(const std::vector<std::string> &args, std::ostream &out,
            std::ostream &err);

} // namespace klint

#endif // KLOC_TOOLS_KLINT_CLI_HH
