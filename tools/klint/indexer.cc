#include "tools/klint/indexer.hh"

#include <algorithm>
#include <cctype>
#include <set>

namespace klint {

namespace {

using Tokens = std::vector<Token>;

/** Index of the '(' matching toks[close] (a ')'), or -1. */
int
matchBack(const Tokens &toks, int close, const char *open,
          const char *closer)
{
    int depth = 0;
    for (int j = close; j >= 0; --j) {
        if (toks[j].is(closer))
            ++depth;
        else if (toks[j].is(open) && --depth == 0)
            return j;
    }
    return -1;
}

/** Index just past the bracket matching toks[i] (an opener). */
int
matchForward(const Tokens &toks, int i, const char *open,
             const char *close)
{
    int depth = 0;
    for (int n = static_cast<int>(toks.size()); i < n; ++i) {
        if (toks[i].is(open))
            ++depth;
        else if (toks[i].is(close) && --depth == 0)
            return i;
    }
    return static_cast<int>(toks.size()) - 1;
}

const std::set<std::string> &
controlKeywords()
{
    static const std::set<std::string> kWords = {
        "if", "for", "while", "switch", "catch", "constexpr",
        "return", "sizeof", "alignof", "do", "else",
    };
    return kWords;
}

/** Trailing tokens legal between a declarator's ')' and its '{'. */
bool
isTrailingSpecifier(const Token &tok)
{
    return tok.ident() &&
           (tok.text == "const" || tok.text == "noexcept" ||
            tok.text == "override" || tok.text == "final" ||
            tok.text == "mutable");
}

struct BraceInfo
{
    bool isFunction = false;
    bool isLambda = false;
    std::string name;
    std::string qualifier;
    int paramOpen = -1;   ///< '(' of the parameter list, or -1
    int paramClose = -1;  ///< matching ')'
    int nameLine = 0;
};

/**
 * Classify the '{' at @p open: function body, lambda body, or
 * neither. Walks backwards over trailing specifiers and, for
 * constructors, the member-init list.
 */
BraceInfo
classifyBrace(const Tokens &toks, int open)
{
    BraceInfo info;
    int j = open;
    while (j > 0 && isTrailingSpecifier(toks[j - 1]))
        --j;
    if (j == 0)
        return info;

    // Capture-only lambda: `[this] { ... }`.
    if (toks[j - 1].is("]")) {
        const int lb = matchBack(toks, j - 1, "[", "]");
        if (lb >= 0) {
            info.isFunction = info.isLambda = true;
            info.name = "<lambda>";
            info.nameLine = toks[lb].line;
        }
        return info;
    }
    if (!toks[j - 1].is(")"))
        return info;

    int groupClose = j - 1;
    // Constructors interpose `: member(init), member(init)` between
    // the parameter list and the body; walk the groups right to left.
    while (true) {
        const int k = matchBack(toks, groupClose, "(", ")");
        if (k <= 0)
            return info;
        const Token &before = toks[k - 1];
        if (before.is("]")) {
            const int lb = matchBack(toks, k - 1, "[", "]");
            if (lb < 0)
                return info;
            info.isFunction = info.isLambda = true;
            info.name = "<lambda>";
            info.nameLine = toks[lb].line;
            info.paramOpen = k;
            info.paramClose = groupClose;
            return info;
        }
        if (!before.ident() || controlKeywords().count(before.text))
            return info;

        info.name = before.text;
        info.nameLine = before.line;
        info.paramOpen = k;
        info.paramClose = groupClose;
        int q = k - 2;
        if (q >= 1 && toks[q].is("::") && toks[q - 1].ident()) {
            info.qualifier = toks[q - 1].text;
            q -= 2;
        } else {
            info.qualifier.clear();
        }
        if (q < 0) {
            info.isFunction = true;
            return info;
        }
        const Token &prev = toks[q];
        if (prev.is(",")) {
            // Member-init item: the previous group ends just before
            // the comma.
            if (q >= 1 && toks[q - 1].is(")")) {
                groupClose = q - 1;
                info.qualifier.clear();
                continue;
            }
            return info;
        }
        if (prev.is(":")) {
            // Init-list intro: the parameter list's ')' precedes it
            // (possibly behind noexcept).
            int p = q - 1;
            while (p > 0 && isTrailingSpecifier(toks[p]))
                --p;
            if (p >= 0 && toks[p].is(")")) {
                groupClose = p;
                info.qualifier.clear();
                continue;
            }
            return info;
        }
        // Reject expression contexts: `obj.method(...) {` cannot be
        // a definition; so the declarator must follow a type name,
        // scope punctuation that ends a previous declaration, or a
        // declarator adornment.
        if (prev.is(".") || prev.is("->") || prev.is("(") ||
            prev.is("[") || prev.is("=") || prev.is(","))
            return info;
        info.isFunction = true;
        return info;
    }
}

const std::set<std::string> &
mutatorMethods()
{
    static const std::set<std::string> kMutators = {
        "erase",        "insert",       "push_back",  "pop_back",
        "push_front",   "pop_front",    "clear",      "emplace",
        "emplace_back", "emplace_front", "resize",    "assign",
        "pushFront",    "pushBack",     "popFront",   "popBack",
        "remove",
    };
    return kMutators;
}

/** Callback-slot names: a call through one is an indirect call. */
bool
isCallbackSlotName(const std::string &name)
{
    return name == "fn" || name == "cb" || name == "probe" ||
           name == "callback" || name == "handler" || name == "hook";
}

/**
 * Does a `_storedMember(...)` call look like a callback slot? Only
 * names ending in an observer-ish word count: `_rereadProbe(f)` is a
 * dispatch, but `_keyFn(obj)` in a container is a pure key extractor
 * and edging it to the whole pool drowns every table walk in noise.
 */
bool
hasCallbackSuffix(const std::string &name)
{
    static const char *kSuffixes[] = {"hook",    "probe",    "cb",
                                      "callback", "handler", "observer"};
    std::string lower;
    lower.reserve(name.size());
    for (const char c : name)
        lower += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    for (const char *suffix : kSuffixes) {
        const size_t n = std::char_traits<char>::length(suffix);
        if (lower.size() >= n &&
            lower.compare(lower.size() - n, n, suffix) == 0)
            return true;
    }
    return false;
}

/** Does @p callee look like a callback-registration API? */
bool
isRegistrationCallee(const std::string &callee)
{
    if (callee == "schedule")
        return true;
    auto prefixed = [&](const char *prefix) {
        const size_t n = std::char_traits<char>::length(prefix);
        return callee.size() > n && callee.compare(0, n, prefix) == 0 &&
               std::isupper(static_cast<unsigned char>(callee[n]));
    };
    return prefixed("add") || prefixed("set") || prefixed("register");
}

/**
 * Receiver of the member access ending at toks[dot] ('.' or '->'):
 * walks one `ident` or `ident[...]` chain leftwards. Returns the
 * receiver identifier (empty if the receiver is an expression) and
 * sets @p subscripted.
 */
std::string
receiverIdent(const Tokens &toks, int dot, bool &subscripted)
{
    subscripted = false;
    int j = dot - 1;
    while (j > 0 && toks[j].is("]")) {
        const int lb = matchBack(toks, j, "[", "]");
        if (lb < 0)
            return "";
        subscripted = true;
        j = lb - 1;
    }
    if (j >= 0 && toks[j].ident())
        return toks[j].text;
    return "";
}

/** First identifier in [from, to) resolving to a root in @p fn. */
std::string
firstRootIn(const FunctionDef &fn, const Tokens &toks, int from, int to)
{
    for (int j = from; j < to; ++j) {
        if (!toks[j].ident())
            continue;
        const bool subscripted =
            j + 1 < to && toks[j + 1].is("[");
        const std::string root =
            resolveRoot(fn, toks[j].text, subscripted);
        if (!root.empty())
            return root;
    }
    return "";
}

/** Parse the parameter list between paramOpen/paramClose. */
void
parseParams(const Tokens &toks, int paramOpen, int paramClose,
            FunctionDef &fn)
{
    if (paramOpen < 0 || paramClose <= paramOpen + 1)
        return;
    int depth = 0;
    int segStart = paramOpen + 1;
    auto flush = [&](int segEnd) {
        // The parameter name is the last identifier in the segment
        // that isn't inside brackets and isn't followed by '::'.
        std::string name;
        bool byRef = false;
        int d = 0;
        for (int j = segStart; j < segEnd; ++j) {
            if (toks[j].is("<") || toks[j].is("(") || toks[j].is("["))
                ++d;
            else if (toks[j].is(">") || toks[j].is(")") ||
                     toks[j].is("]"))
                --d;
            else if (d == 0 && toks[j].is("&"))
                byRef = true;
            else if (d == 0 && toks[j].is("="))
                break;  // default argument: name came before
            else if (d == 0 && toks[j].ident() &&
                     !(j + 1 < segEnd && toks[j + 1].is("::")))
                name = toks[j].text;
        }
        if (!name.empty() && name != "void" && name != "const")
            fn.params.push_back({name, byRef});
        else if (segEnd > segStart)
            fn.params.push_back({"", false});  // unnamed: keep arity
    };
    for (int j = paramOpen + 1; j <= paramClose; ++j) {
        if (toks[j].is("(") || toks[j].is("<") || toks[j].is("["))
            ++depth;
        else if (toks[j].is(">") || toks[j].is("]"))
            --depth;
        else if (toks[j].is(")")) {
            if (j == paramClose) {
                if (j > segStart)
                    flush(j);
                break;
            }
            --depth;
        } else if (toks[j].is(",") && depth == 0) {
            flush(j);
            segStart = j + 1;
        }
    }
}

/** Collect `auto &name = expr;` reference aliases in the body. */
void
collectAliases(const Tokens &toks, int begin, int end, FunctionDef &fn)
{
    for (int i = begin; i + 2 < end; ++i) {
        if (!toks[i].is("&") || !toks[i + 1].ident() ||
            !toks[i + 2].is("="))
            continue;
        // Reject comparisons (&& lexes as two '&') and compound
        // operators: require a type-ish token before the '&'.
        if (i > begin && !(toks[i - 1].ident() || toks[i - 1].is(">")))
            continue;
        const std::string &name = toks[i + 1].text;
        int stop = i + 3;
        while (stop < end && !toks[stop].is(";"))
            ++stop;
        const std::string root =
            firstRootIn(fn, toks, i + 3, stop);
        if (!root.empty())
            fn.aliases[name] = root;
    }
}

} // namespace

bool
isMutatorMethod(const std::string &method)
{
    return mutatorMethods().count(method) > 0;
}

std::string
resolveRoot(const FunctionDef &fn, const std::string &ident,
            bool subscripted)
{
    auto alias = fn.aliases.find(ident);
    if (alias != fn.aliases.end()) {
        std::string root = alias->second;
        if (subscripted && root.size() >= 2 &&
            root.compare(root.size() - 2, 2, "[]") != 0)
            root += "[]";
        return root;
    }
    for (size_t k = 0; k < fn.params.size(); ++k) {
        if (fn.params[k].name == ident) {
            if (!fn.params[k].byRef)
                return "";  // by-value: mutation stays local
            return "%" + std::to_string(k);
        }
    }
    if (!ident.empty() && ident[0] == '_')
        return subscripted ? ident + "[]" : ident;
    if (!ident.empty())
        return std::string("local:") + ident + (subscripted ? "[]" : "");
    return "";
}

FileIndex
indexFile(const SourceFile &file)
{
    FileIndex index;
    const Tokens &toks = file.tokens;
    const int n = static_cast<int>(toks.size());

    // Pass 1: locate every function/lambda body.
    for (int i = 0; i < n; ++i) {
        if (!toks[i].is("{"))
            continue;
        BraceInfo info = classifyBrace(toks, i);
        if (!info.isFunction)
            continue;
        FunctionDef fn;
        fn.name = info.name;
        fn.qualifier = info.qualifier;
        fn.line = info.nameLine;
        fn.isLambda = info.isLambda;
        fn.bodyBegin = i;
        fn.bodyEnd = matchForward(toks, i, "{", "}");
        parseParams(toks, info.paramOpen, info.paramClose, fn);
        if (info.isLambda) {
            // Registered callback? Find the innermost enclosing call:
            // the first unmatched '(' to the left of the lambda, and
            // the identifier before it.
            int depth = 0;
            const int lambdaStart =
                info.paramOpen >= 0 ? info.paramOpen : i;
            for (int j = lambdaStart - 1; j >= 0; --j) {
                if (toks[j].is(")") || toks[j].is("]") || toks[j].is("}"))
                    ++depth;
                else if (toks[j].is("(") || toks[j].is("[") ||
                         toks[j].is("{")) {
                    if (depth == 0) {
                        if (toks[j].is("(") && j > 0 &&
                            toks[j - 1].ident() &&
                            isRegistrationCallee(toks[j - 1].text))
                            fn.registeredVia = toks[j - 1].text;
                        break;
                    }
                    --depth;
                } else if (toks[j].is(";")) {
                    break;
                }
            }
        }
        index.functions.push_back(std::move(fn));
    }

    // Nested-body ranges to exclude from each function's own scan:
    // a lambda's calls belong to the lambda, not its host.
    auto nestedRanges = [&](size_t self) {
        std::vector<std::pair<int, int>> ranges;
        const FunctionDef &fn = index.functions[self];
        for (size_t o = 0; o < index.functions.size(); ++o) {
            if (o == self)
                continue;
            const FunctionDef &other = index.functions[o];
            if (other.bodyBegin > fn.bodyBegin &&
                other.bodyEnd <= fn.bodyEnd)
                ranges.emplace_back(other.bodyBegin, other.bodyEnd);
        }
        std::sort(ranges.begin(), ranges.end());
        return ranges;
    };

    // Pass 2: per-function summaries.
    for (size_t f = 0; f < index.functions.size(); ++f) {
        FunctionDef &fn = index.functions[f];
        const auto skip = nestedRanges(f);

        auto makeStep = [&](int &i) {
            for (const auto &[from, to] : skip) {
                if (i >= from && i <= to) {
                    i = to;  // loop's ++i moves past the nested body
                    return;
                }
            }
        };

        collectAliases(toks, fn.bodyBegin, fn.bodyEnd, fn);

        for (int i = fn.bodyBegin + 1; i < fn.bodyEnd; ++i) {
            makeStep(i);
            if (i >= fn.bodyEnd || !toks[i].ident() ||
                i + 1 >= n || !toks[i + 1].is("("))
                continue;
            const std::string &name = toks[i].text;
            if (controlKeywords().count(name))
                continue;

            // `std::sort(...)` and friends are opaque: they never
            // touch our members, and resolving them by name would
            // alias any same-named method in the project.
            if (i >= 2 && toks[i - 1].is("::") &&
                toks[i - 2].text == "std")
                continue;

            const bool memberCall =
                i > 0 && (toks[i - 1].is(".") || toks[i - 1].is("->"));

            // Mutation: container-mutator method on a resolvable
            // receiver.
            if (memberCall && isMutatorMethod(name)) {
                bool subscripted = false;
                const std::string recv =
                    receiverIdent(toks, i - 1, subscripted);
                const std::string root =
                    recv.empty() ? ""
                                 : resolveRoot(fn, recv, subscripted);
                if (!root.empty()) {
                    fn.mutations.push_back(
                        {root, name, toks[i].line, i});
                    continue;
                }
            }

            CallSite call;
            call.callee = name;
            call.line = toks[i].line;
            call.tok = i;
            if (memberCall) {
                bool subscripted = false;
                const std::string recv =
                    receiverIdent(toks, i - 1, subscripted);
                if (!recv.empty())
                    call.recvRoot = resolveRoot(fn, recv, subscripted);
            }
            // Indirect: a callback-slot field, or a call directly
            // through a stored `_rereadProbe`-style member whose name
            // ends in an observer-ish word. Double-underscore names
            // are reserved (compiler builtins such as
            // __builtin_expect), never stored callbacks.
            call.indirect =
                isCallbackSlotName(name) ||
                (!memberCall && name[0] == '_' && name[1] != '_' &&
                 hasCallbackSuffix(name));

            // Top-level argument roots.
            const int close = matchForward(toks, i + 1, "(", ")");
            int depth = 0;
            int argStart = i + 2;
            for (int j = i + 1; j <= close; ++j) {
                if (toks[j].is("(") || toks[j].is("[") || toks[j].is("{"))
                    ++depth;
                else if (toks[j].is("]") || toks[j].is("}"))
                    --depth;
                else if (toks[j].is(")")) {
                    if (--depth == 0) {
                        if (j > argStart)
                            call.argRoots.push_back(firstRootIn(
                                fn, toks, argStart, j));
                        break;
                    }
                } else if (toks[j].is(",") && depth == 1) {
                    call.argRoots.push_back(
                        firstRootIn(fn, toks, argStart, j));
                    argStart = j + 1;
                }
            }
            call.argCount = static_cast<int>(call.argRoots.size());
            fn.calls.push_back(std::move(call));
        }
    }
    return index;
}

} // namespace klint
