/**
 * @file
 * Declaration/definition indexer for klint's interprocedural rules.
 *
 * The indexer walks one lexed file and extracts every function
 * definition (free functions, `Class::method` definitions, and
 * lambda literals) together with a per-function summary:
 *
 *   - the parameter list (names + by-reference-ness),
 *   - local reference aliases (`auto &list = _perCpu[cpu]`),
 *   - direct container mutations (`list.erase(...)`),
 *   - outgoing call sites with per-argument root resolution,
 *   - whether the body calls through a callback slot, and
 *   - whether the function is itself a callback registered through
 *     an observer/hook/scheduler API.
 *
 * Container identity is a *root path*, not a type: the repo's
 * `_member` naming convention makes member state recognisable at
 * token level. Roots are
 *
 *   `_member`      the member container itself
 *   `_member[]`    any element of a subscripted member (one level)
 *   `%<k>`         the function's k-th by-reference parameter
 *   `local:x`      a function-local container
 *
 * `_member[]` is deliberately distinct from `_member`: mutating an
 * element of `_perCpu` does not invalidate iteration over `_perCpu`
 * itself, and conflating the two drowned the interprocedural rules
 * in false positives.
 *
 * The summaries are cheap to serialize, which is what the
 * file-hash-keyed symbol cache (cache.hh) stores.
 */

#ifndef KLOC_TOOLS_KLINT_INDEXER_HH
#define KLOC_TOOLS_KLINT_INDEXER_HH

#include <map>
#include <string>
#include <vector>

#include "tools/klint/lexer.hh"

namespace klint {

struct Param
{
    std::string name;
    bool byRef = false;
};

struct CallSite
{
    std::string callee;  ///< unqualified name left of the '('
    int line = 0;
    int tok = 0;         ///< token index of the callee identifier
    bool indirect = false;  ///< call through a callback slot
    std::string recvRoot;   ///< resolved root of the receiver, or ""
    /** Resolved root of each top-level argument ("" when none). */
    std::vector<std::string> argRoots;
    /** Top-level argument count, for overload-set pruning. */
    int argCount = 0;
};

struct Mutation
{
    std::string root;    ///< resolved receiver root
    std::string method;  ///< erase/insert/push_back/...
    int line = 0;
    int tok = 0;
};

struct FunctionDef
{
    std::string name;       ///< unqualified; "<lambda>" for lambdas
    std::string qualifier;  ///< enclosing class for Class::method
    int line = 0;
    int bodyBegin = 0;  ///< token index of the opening '{'
    int bodyEnd = 0;    ///< token index of the matching '}'
    bool isLambda = false;
    /**
     * Name of the registration API this lambda was passed to
     * (`addAllocObserver`, `schedule`, ...). Non-empty means the
     * function joins the callback pool: any indirect call site may
     * reach it.
     */
    std::string registeredVia;
    std::vector<Param> params;
    std::vector<CallSite> calls;
    std::vector<Mutation> mutations;
    /** Local reference name -> root path. */
    std::map<std::string, std::string> aliases;

    std::string
    displayName() const
    {
        if (isLambda) {
            return "<lambda:" + std::to_string(line) + ">" +
                   (registeredVia.empty() ? ""
                                          : " registered via " +
                                                registeredVia);
        }
        return qualifier.empty() ? name : qualifier + "::" + name;
    }
};

struct FileIndex
{
    std::vector<FunctionDef> functions;
};

/** Index @p file's function definitions and summaries. */
FileIndex indexFile(const SourceFile &file);

/**
 * Resolve identifier @p ident (receiver or argument position) inside
 * @p fn to a root path; @p subscripted appends "[]" to member/local
 * roots. Returns "" for identifiers that are neither a member, a
 * parameter, an alias, nor a plausible local container.
 */
std::string resolveRoot(const FunctionDef &fn, const std::string &ident,
                        bool subscripted);

/** True when @p method is a container mutator klint recognises. */
bool isMutatorMethod(const std::string &method);

} // namespace klint

#endif // KLOC_TOOLS_KLINT_INDEXER_HH
