#include "tools/klint/klint.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "tools/klint/cache.hh"

namespace klint {

namespace fs = std::filesystem;

const SourceFile *
Context::find(const std::string &path) const
{
    auto it = byPath.find(path);
    return it == byPath.end() ? nullptr : &files[it->second];
}

const FileIndex *
Context::findIndex(const std::string &path) const
{
    auto it = byPath.find(path);
    return it == byPath.end() ? nullptr : &indexes[it->second];
}

uint64_t
fnv1a(const std::string &data)
{
    uint64_t hash = 1469598103934665603ULL;
    for (const char c : data) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ULL;
    }
    return hash;
}

namespace {

std::string
dirOf(const std::string &rel)
{
    // First two components for src/<subsys>/..., first one otherwise.
    const size_t first = rel.find('/');
    if (first == std::string::npos)
        return "";
    if (rel.compare(0, first, "src") == 0) {
        const size_t second = rel.find('/', first + 1);
        if (second == std::string::npos)
            return rel.substr(0, first);
        return rel.substr(0, second);
    }
    return rel.substr(0, first);
}

Context
loadContext(const std::string &root)
{
    Context ctx;
    ctx.root = root;

    std::vector<std::string> paths;
    for (const char *sub : {"src", "tools", "bench", "tests"}) {
        const fs::path base = fs::path(root) / sub;
        if (!fs::exists(base))
            continue;
        for (const auto &entry : fs::recursive_directory_iterator(base)) {
            if (!entry.is_regular_file())
                continue;
            const std::string ext = entry.path().extension().string();
            if (ext != ".hh" && ext != ".cc")
                continue;
            const std::string rel =
                fs::relative(entry.path(), root).generic_string();
            // Rule fixtures are deliberate violations; never lint
            // them as part of the tree they live in.
            if (rel.rfind("tests/klint/fixtures/", 0) == 0)
                continue;
            paths.push_back(rel);
        }
    }
    std::sort(paths.begin(), paths.end());

    for (const std::string &rel : paths) {
        std::ifstream in(fs::path(root) / rel);
        std::stringstream buf;
        buf << in.rdbuf();

        SourceFile file;
        file.path = rel;
        file.dir = dirOf(rel);
        file.header = rel.size() > 3 &&
                      rel.compare(rel.size() - 3, 3, ".hh") == 0;
        file.contentHash = fnv1a(buf.str());
        lex(buf.str(), file);
        ctx.byPath[rel] = ctx.files.size();
        ctx.files.push_back(std::move(file));
    }
    return ctx;
}

void
buildIndexes(Context &ctx, const Options &opts)
{
    SymbolCache cache;
    const bool useCache = !opts.cachePath.empty();
    if (useCache)
        cache.load(opts.cachePath);

    RunStats stats;
    stats.filesScanned = ctx.files.size();
    ctx.indexes.resize(ctx.files.size());
    for (size_t i = 0; i < ctx.files.size(); ++i) {
        const SourceFile &file = ctx.files[i];
        if (const FileIndex *hit =
                cache.lookup(file.path, file.contentHash)) {
            ctx.indexes[i] = *hit;
            ++stats.indexCacheHits;
        } else {
            ctx.indexes[i] = indexFile(file);
            ++stats.indexCacheMisses;
            if (useCache)
                cache.put(file.path, file.contentHash, ctx.indexes[i]);
        }
    }
    if (useCache && stats.indexCacheMisses > 0)
        cache.store(opts.cachePath);
    if (opts.stats)
        *opts.stats = stats;

    // The interprocedural rules reason over simulator code only:
    // bench/tests fixtures sharing method names with src/ classes
    // must not pollute mutation summaries.
    std::vector<std::pair<std::string, const FileIndex *>> srcFiles;
    for (size_t i = 0; i < ctx.files.size(); ++i) {
        if (ctx.files[i].path.compare(0, 4, "src/") == 0)
            srcFiles.emplace_back(ctx.files[i].path, &ctx.indexes[i]);
    }
    ctx.graph.build(srcFiles);
}

bool
suppressed(const Context &ctx, const Finding &finding)
{
    const SourceFile *file = ctx.find(finding.file);
    if (!file)
        return false;
    for (int line = finding.line; line >= finding.line - 2; --line) {
        auto it = file->comments.find(line);
        if (it == file->comments.end())
            continue;
        if (suppressionCovers(it->second, finding.rule))
            return true;
    }
    return false;
}

} // namespace

bool
suppressionCovers(const std::string &comment, const std::string &rule)
{
    size_t pos = 0;
    while ((pos = comment.find("klint:", pos)) != std::string::npos) {
        size_t p = pos + 6;
        while (p < comment.size() && comment[p] == ' ')
            ++p;
        pos += 6;
        if (comment.compare(p, 6, "allow(") != 0)
            continue;
        p += 6;
        const size_t close = comment.find(')', p);
        if (close == std::string::npos)
            continue;
        const std::string name = comment.substr(p, close - p);
        p = close + 1;
        while (p < comment.size() && comment[p] == ' ')
            ++p;
        // The v2 format demands `: <rationale>` after the rule name.
        if (p >= comment.size() || comment[p] != ':')
            continue;
        ++p;
        while (p < comment.size() && comment[p] == ' ')
            ++p;
        if (p >= comment.size())
            continue;  // colon but no rationale
        if (name == rule || name == "all")
            return true;
    }
    return false;
}

std::vector<Finding>
runKlint(const Options &opts)
{
    Context ctx = loadContext(opts.root);
    buildIndexes(ctx, opts);

    std::vector<Finding> findings;
    for (const Rule &rule : ruleCatalogue()) {
        if (!opts.rules.empty() &&
            std::find(opts.rules.begin(), opts.rules.end(), rule.name) ==
                opts.rules.end())
            continue;
        rule.fn(ctx, findings);
    }

    findings.erase(
        std::remove_if(findings.begin(), findings.end(),
                       [&](const Finding &f) { return suppressed(ctx, f); }),
        findings.end());

    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return findings;
}

} // namespace klint
