#include "tools/klint/klint.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace klint {

namespace fs = std::filesystem;

const SourceFile *
Context::find(const std::string &path) const
{
    auto it = byPath.find(path);
    return it == byPath.end() ? nullptr : &files[it->second];
}

namespace {

std::string
dirOf(const std::string &rel)
{
    // First two components for src/<subsys>/..., first one otherwise.
    const size_t first = rel.find('/');
    if (first == std::string::npos)
        return "";
    if (rel.compare(0, first, "src") == 0) {
        const size_t second = rel.find('/', first + 1);
        if (second == std::string::npos)
            return rel.substr(0, first);
        return rel.substr(0, second);
    }
    return rel.substr(0, first);
}

Context
loadContext(const std::string &root)
{
    Context ctx;
    ctx.root = root;

    std::vector<std::string> paths;
    for (const char *sub : {"src", "tools"}) {
        const fs::path base = fs::path(root) / sub;
        if (!fs::exists(base))
            continue;
        for (const auto &entry : fs::recursive_directory_iterator(base)) {
            if (!entry.is_regular_file())
                continue;
            const std::string ext = entry.path().extension().string();
            if (ext != ".hh" && ext != ".cc")
                continue;
            paths.push_back(
                fs::relative(entry.path(), root).generic_string());
        }
    }
    std::sort(paths.begin(), paths.end());

    for (const std::string &rel : paths) {
        std::ifstream in(fs::path(root) / rel);
        std::stringstream buf;
        buf << in.rdbuf();

        SourceFile file;
        file.path = rel;
        file.dir = dirOf(rel);
        file.header = rel.size() > 3 &&
                      rel.compare(rel.size() - 3, 3, ".hh") == 0;
        lex(buf.str(), file);
        ctx.byPath[rel] = ctx.files.size();
        ctx.files.push_back(std::move(file));
    }
    return ctx;
}

bool
suppressed(const Context &ctx, const Finding &finding)
{
    const SourceFile *file = ctx.find(finding.file);
    if (!file)
        return false;
    const std::string tagRule = "klint: allow(" + finding.rule + ")";
    const std::string tagAll = "klint: allow(all)";
    for (int line = finding.line; line >= finding.line - 2; --line) {
        auto it = file->comments.find(line);
        if (it == file->comments.end())
            continue;
        if (it->second.find(tagRule) != std::string::npos ||
            it->second.find(tagAll) != std::string::npos)
            return true;
    }
    return false;
}

} // namespace

std::vector<Finding>
runKlint(const Options &opts)
{
    const Context ctx = loadContext(opts.root);

    std::vector<Finding> findings;
    for (const Rule &rule : ruleCatalogue()) {
        if (!opts.rules.empty() &&
            std::find(opts.rules.begin(), opts.rules.end(), rule.name) ==
                opts.rules.end())
            continue;
        rule.fn(ctx, findings);
    }

    findings.erase(
        std::remove_if(findings.begin(), findings.end(),
                       [&](const Finding &f) { return suppressed(ctx, f); }),
        findings.end());

    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return findings;
}

} // namespace klint
