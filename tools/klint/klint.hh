/**
 * @file
 * klint: domain-specific static analysis for the KLOCs simulator.
 *
 * klint enforces repo-specific invariants that generic linters
 * cannot know about:
 *
 *   determinism       — no iteration over unordered containers in
 *                       simulation-order code; no wall-clock or
 *                       libc randomness outside src/base.
 *   checker-coverage  — every TraceEventType enumerator is handled
 *                       by the InvariantChecker.
 *   fault-site-coverage — every FaultSite enumerator is consulted at
 *                       a call site and checked by the
 *                       InvariantChecker's FaultInject dispatch.
 *   layering          — #includes respect the subsystem DAG.
 *   units             — public APIs in mem/, fs/, alloc/ headers use
 *                       strong types (Tick/Bytes/Pfn/TierId/
 *                       FrameCount), not raw 64-bit integers.
 *   trace-args        — Tracer::emit call sites pass exactly the
 *                       argument count the event's spec declares.
 *   hot-path-alloc    — no per-event heap allocation (new,
 *                       make_unique, make_shared) in function bodies
 *                       that emit trace events; hot paths reuse
 *                       scratch or arena storage.
 *   include-hygiene   — canonical header guards, no parent-relative
 *                       includes.
 *
 * Findings can be suppressed with a justification comment containing
 * `klint: allow(<rule>)` (or `allow(all)`) on the finding's line or
 * one of the two lines above it.
 *
 * See docs/ANALYSIS.md for the full rule catalogue and rationale.
 */

#ifndef KLOC_TOOLS_KLINT_KLINT_HH
#define KLOC_TOOLS_KLINT_KLINT_HH

#include <map>
#include <string>
#include <vector>

#include "tools/klint/lexer.hh"

namespace klint {

struct Finding
{
    std::string rule;
    std::string file;  ///< repo-relative path
    int line;
    std::string message;
};

struct Options
{
    /** Repo root to scan (contains src/ and optionally tools/). */
    std::string root = ".";
    /** Rule names to run; empty = all. */
    std::vector<std::string> rules;
};

/** Everything the rules see: the lexed repo. */
struct Context
{
    std::string root;
    std::vector<SourceFile> files;
    /** path -> index into files. */
    std::map<std::string, size_t> byPath;

    const SourceFile *find(const std::string &path) const;
};

using RuleFn = void (*)(const Context &, std::vector<Finding> &);

struct Rule
{
    const char *name;
    const char *summary;
    RuleFn fn;
};

/** The ordered rule catalogue. */
const std::vector<Rule> &ruleCatalogue();

/**
 * Run the selected rules over @p opts.root. Findings are returned
 * sorted by (file, line, rule) with suppressed findings removed.
 */
std::vector<Finding> runKlint(const Options &opts);

} // namespace klint

#endif // KLOC_TOOLS_KLINT_KLINT_HH
