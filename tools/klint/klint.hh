/**
 * @file
 * klint: domain-specific static analysis for the KLOCs simulator.
 *
 * klint enforces repo-specific invariants that generic linters
 * cannot know about:
 *
 *   determinism       — no iteration over unordered containers in
 *                       simulation-order code; no wall-clock or
 *                       libc randomness outside src/base.
 *   determinism-taint — values produced by unordered-container
 *                       iteration must not flow into trace emission,
 *                       policy decisions, or BENCH metrics without
 *                       passing through sortedSnapshot().
 *   reentrancy-hazard — no index held into a mutable container
 *                       across a call that can transitively reach a
 *                       mutator of that container (the PR-7
 *                       findKnode bug class).
 *   iterator-invalidation — no mutation of a container reachable
 *                       from inside a range-for or gang-lookup
 *                       scratch walk over it.
 *   shard-confinement — shard-scoped code (ShardContext methods,
 *                       functions taking a ShardContext&) must not
 *                       reach a write of MachineCore-shared state
 *                       outside a *AtBarrier barrier-drain method.
 *   checker-coverage  — every TraceEventType enumerator is handled
 *                       by the InvariantChecker.
 *   fault-site-coverage — every FaultSite enumerator is consulted at
 *                       a call site and checked by the
 *                       InvariantChecker's FaultInject dispatch.
 *   layering          — #includes respect the subsystem DAG.
 *   units             — public APIs in mem/, fs/, alloc/ headers use
 *                       strong types (Tick/Bytes/Pfn/TierId/
 *                       FrameCount), not raw 64-bit integers.
 *   trace-args        — Tracer::emit call sites pass exactly the
 *                       argument count the event's spec declares.
 *   hot-path-alloc    — no per-event heap allocation (new,
 *                       make_unique, make_shared) in function bodies
 *                       that emit trace events; hot paths reuse
 *                       scratch or arena storage.
 *   include-hygiene   — canonical header guards, no parent-relative
 *                       includes.
 *   no-mutable-global — no mutable static-storage state shared
 *                       across RunPool runs (src/, bench/, tests/).
 *   suppression-format — suppression comments carry a rule name and
 *                       a rationale.
 *
 * Findings are suppressed with a justification comment of the form
 * `klint:allow(<rule>): <why>` (or `allow(all)`) on the finding's
 * line or one of the two lines above it. A suppression without a
 * rule name or rationale is itself a finding and suppresses nothing.
 *
 * See docs/ANALYSIS.md for the full rule catalogue and rationale.
 */

#ifndef KLOC_TOOLS_KLINT_KLINT_HH
#define KLOC_TOOLS_KLINT_KLINT_HH

#include <map>
#include <string>
#include <vector>

#include "tools/klint/callgraph.hh"
#include "tools/klint/indexer.hh"
#include "tools/klint/lexer.hh"

namespace klint {

struct Finding
{
    std::string rule;
    std::string file;  ///< repo-relative path
    int line;
    std::string message;
};

/** Cache effectiveness counters for one runKlint() invocation. */
struct RunStats
{
    size_t filesScanned = 0;
    size_t indexCacheHits = 0;
    size_t indexCacheMisses = 0;
};

struct Options
{
    /** Repo root to scan (contains src/ and optionally tools/,
     *  bench/, tests/). */
    std::string root = ".";
    /** Rule names to run; empty = all. */
    std::vector<std::string> rules;
    /** Path of the indexed-symbol cache; empty disables caching. */
    std::string cachePath;
    /** When set, filled with cache hit/miss counters. */
    RunStats *stats = nullptr;
};

/** Everything the rules see: the lexed and indexed repo. */
struct Context
{
    std::string root;
    std::vector<SourceFile> files;
    /** path -> index into files. */
    std::map<std::string, size_t> byPath;
    /** Per-file symbol index, parallel to files. */
    std::vector<FileIndex> indexes;
    /** Call graph over the src/ subset (see callgraph.hh). */
    CallGraph graph;

    const SourceFile *find(const std::string &path) const;
    const FileIndex *findIndex(const std::string &path) const;
};

using RuleFn = void (*)(const Context &, std::vector<Finding> &);

struct Rule
{
    const char *name;
    const char *summary;
    RuleFn fn;
};

/** The ordered rule catalogue. */
const std::vector<Rule> &ruleCatalogue();

/**
 * Run the selected rules over @p opts.root. Findings are returned
 * sorted by (file, line, rule) with suppressed findings removed.
 */
std::vector<Finding> runKlint(const Options &opts);

/**
 * Does @p comment validly suppress @p rule? Requires the v2 format
 * `klint:allow(<rule>): <rationale>` (allow(all) also accepted);
 * bare or rationale-less suppressions never suppress.
 */
bool suppressionCovers(const std::string &comment,
                       const std::string &rule);

/** FNV-1a 64-bit hash (file content keys for the symbol cache). */
uint64_t fnv1a(const std::string &data);

} // namespace klint

#endif // KLOC_TOOLS_KLINT_KLINT_HH
