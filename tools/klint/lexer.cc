#include "tools/klint/lexer.hh"

#include <cctype>

namespace klint {

namespace {

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

} // namespace

void
lex(const std::string &content, SourceFile &file)
{
    const size_t n = content.size();
    size_t i = 0;
    int line = 1;
    bool atLineStart = true;

    auto addComment = [&](int at, const std::string &text) {
        auto [it, inserted] = file.comments.emplace(at, text);
        if (!inserted) {
            it->second += ' ';
            it->second += text;
        }
    };

    while (i < n) {
        const char c = content[i];

        if (c == '\n') {
            ++line;
            ++i;
            atLineStart = true;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }

        // Line comment.
        if (c == '/' && i + 1 < n && content[i + 1] == '/') {
            size_t end = content.find('\n', i);
            if (end == std::string::npos)
                end = n;
            addComment(line, content.substr(i, end - i));
            i = end;
            continue;
        }

        // Block comment: text is attributed to its starting line.
        if (c == '/' && i + 1 < n && content[i + 1] == '*') {
            const int start = line;
            size_t end = content.find("*/", i + 2);
            if (end == std::string::npos)
                end = n;
            else
                end += 2;
            addComment(start, content.substr(i, end - i));
            for (size_t k = i; k < end; ++k)
                if (content[k] == '\n')
                    ++line;
            i = end;
            continue;
        }

        // Preprocessor directive: consume the (continued) line.
        if (c == '#' && atLineStart) {
            const int start = line;
            size_t end = i;
            while (end < n) {
                if (content[end] == '\n') {
                    if (end > 0 && content[end - 1] == '\\') {
                        ++line;
                        ++end;
                        continue;
                    }
                    break;
                }
                ++end;
            }
            const std::string text = content.substr(i, end - i);

            // Directive word after '#' and whitespace.
            size_t p = 1;
            while (p < text.size() &&
                   std::isspace(static_cast<unsigned char>(text[p])))
                ++p;
            size_t q = p;
            while (q < text.size() && identChar(text[q]))
                ++q;
            const std::string directive = text.substr(p, q - p);

            auto word = [&](size_t from) {
                while (from < text.size() &&
                       std::isspace(static_cast<unsigned char>(text[from])))
                    ++from;
                size_t to = from;
                while (to < text.size() && identChar(text[to]))
                    ++to;
                return text.substr(from, to - from);
            };

            if (directive == "include") {
                size_t open = text.find_first_of("\"<", q);
                if (open != std::string::npos) {
                    const bool angled = text[open] == '<';
                    const char closer = angled ? '>' : '"';
                    size_t close = text.find(closer, open + 1);
                    if (close != std::string::npos) {
                        file.includes.push_back(
                            {text.substr(open + 1, close - open - 1),
                             angled, start});
                    }
                }
            } else if (directive == "ifndef" && file.guardIfndef.empty()) {
                file.guardIfndef = word(q);
            } else if (directive == "define" && file.guardDefine.empty() &&
                       !file.guardIfndef.empty()) {
                file.guardDefine = word(q);
            }
            i = end;
            continue;
        }

        atLineStart = false;

        // String and character literals (escape-aware, one token).
        if (c == '"' || c == '\'') {
            const char quote = c;
            size_t end = i + 1;
            while (end < n) {
                if (content[end] == '\\') {
                    end += 2;
                    continue;
                }
                if (content[end] == quote) {
                    ++end;
                    break;
                }
                if (content[end] == '\n')
                    break;  // unterminated; tolerate
                ++end;
            }
            file.tokens.push_back({Token::Kind::String,
                                   content.substr(i, end - i), line});
            i = end;
            continue;
        }

        if (identStart(c)) {
            size_t end = i + 1;
            while (end < n && identChar(content[end]))
                ++end;
            file.tokens.push_back({Token::Kind::Ident,
                                   content.substr(i, end - i), line});
            i = end;
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t end = i + 1;
            while (end < n &&
                   (identChar(content[end]) || content[end] == '.' ||
                    content[end] == '\'' ||
                    ((content[end] == '+' || content[end] == '-') &&
                     (content[end - 1] == 'e' || content[end - 1] == 'E' ||
                      content[end - 1] == 'p' || content[end - 1] == 'P'))))
                ++end;
            file.tokens.push_back({Token::Kind::Number,
                                   content.substr(i, end - i), line});
            i = end;
            continue;
        }

        // Punctuation. "::" and "->" are folded into one token; every
        // other punctuator is a single character, which is all the
        // rules need.
        if (c == ':' && i + 1 < n && content[i + 1] == ':') {
            file.tokens.push_back({Token::Kind::Punct, "::", line});
            i += 2;
            continue;
        }
        if (c == '-' && i + 1 < n && content[i + 1] == '>') {
            file.tokens.push_back({Token::Kind::Punct, "->", line});
            i += 2;
            continue;
        }
        file.tokens.push_back({Token::Kind::Punct, std::string(1, c), line});
        ++i;
    }
}

} // namespace klint
