/**
 * @file
 * Minimal C++ tokenizer for klint.
 *
 * klint does not parse C++; it lexes it. Each rule matches token
 * patterns (identifiers, punctuation, balanced brackets) instead of
 * an AST, which keeps the tool dependency-free and fast while being
 * precise enough for the narrow, codebase-specific properties it
 * checks. Comments are kept out of the token stream but recorded
 * per-line so suppression annotations can be honoured; preprocessor
 * lines are parsed just enough to extract #include targets and
 * header-guard macros.
 */

#ifndef KLOC_TOOLS_KLINT_LEXER_HH
#define KLOC_TOOLS_KLINT_LEXER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace klint {

struct Token
{
    enum class Kind { Ident, Number, String, Punct };
    Kind kind;
    std::string text;
    int line;

    bool is(const char *s) const { return text == s; }
    bool ident() const { return kind == Kind::Ident; }
};

struct Include
{
    std::string target;  ///< path between the quotes/brackets
    bool angled;         ///< <...> rather than "..."
    int line;
};

/** One lexed translation unit or header. */
struct SourceFile
{
    std::string path;  ///< repo-relative, '/'-separated
    std::string dir;   ///< first two path components, e.g. "src/mem"
    bool header = false;
    uint64_t contentHash = 0;  ///< FNV-1a of the raw content

    std::vector<Token> tokens;
    std::vector<Include> includes;
    /** line -> concatenated comment text appearing on that line. */
    std::map<int, std::string> comments;

    /** Macro names of the first #ifndef / #define pair, if any. */
    std::string guardIfndef;
    std::string guardDefine;
};

/** Lex @p content into @p file (path/dir must already be set). */
void lex(const std::string &content, SourceFile &file);

} // namespace klint

#endif // KLOC_TOOLS_KLINT_LEXER_HH
