/**
 * @file
 * klint CLI. Usage:
 *
 *   klint [--root=PATH] [--rules=a,b,c] [--list-rules]
 *
 * Scans <root>/src and <root>/tools, prints findings in
 * file:line: [rule] message form, and exits non-zero when any
 * finding survives suppression.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "tools/klint/klint.hh"

int
main(int argc, char **argv)
{
    klint::Options opts;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--root=", 0) == 0) {
            opts.root = arg.substr(7);
        } else if (arg.rfind("--rules=", 0) == 0) {
            std::string list = arg.substr(8);
            size_t pos = 0;
            while (pos <= list.size()) {
                size_t comma = list.find(',', pos);
                if (comma == std::string::npos)
                    comma = list.size();
                if (comma > pos)
                    opts.rules.push_back(list.substr(pos, comma - pos));
                pos = comma + 1;
            }
        } else if (arg == "--list-rules") {
            for (const klint::Rule &rule : klint::ruleCatalogue())
                std::printf("%-18s %s\n", rule.name, rule.summary);
            return 0;
        } else if (arg == "-h" || arg == "--help") {
            std::printf(
                "usage: klint [--root=PATH] [--rules=a,b,c] "
                "[--list-rules]\n");
            return 0;
        } else {
            std::fprintf(stderr, "klint: unknown argument '%s'\n",
                         arg.c_str());
            return 2;
        }
    }

    const auto findings = klint::runKlint(opts);
    for (const auto &finding : findings) {
        std::printf("%s:%d: [%s] %s\n", finding.file.c_str(), finding.line,
                    finding.rule.c_str(), finding.message.c_str());
    }
    if (!findings.empty()) {
        std::fprintf(stderr, "klint: %zu finding%s\n", findings.size(),
                     findings.size() == 1 ? "" : "s");
        return 1;
    }
    return 0;
}
