/**
 * @file
 * klint CLI entry point; the real front end lives in cli.cc so tests
 * can drive it. Run `klint --help` for usage.
 */

#include <iostream>
#include <string>
#include <vector>

#include "tools/klint/cli.hh"

int
main(int argc, char **argv)
{
    const std::vector<std::string> args(argv + 1, argv + argc);
    return klint::cliMain(args, std::cout, std::cerr);
}
