/**
 * @file
 * The klint rule implementations. Each rule is a pure function over
 * the lexed repo (Context) appending Findings; docs/ANALYSIS.md is
 * the human-readable catalogue and must be kept in sync.
 */

#include "tools/klint/klint.hh"

#include <algorithm>
#include <set>

namespace klint {

namespace {

using Tokens = std::vector<Token>;

bool
underSrc(const SourceFile &file)
{
    return file.path.compare(0, 4, "src/") == 0;
}

/** Code that runs inside (or drives) RunPool runs: the simulator
 *  itself, the benches, and the test suite. */
bool
underRunScope(const SourceFile &file)
{
    return underSrc(file) || file.path.compare(0, 6, "bench/") == 0 ||
           file.path.compare(0, 6, "tests/") == 0;
}

/** Index just past the bracket that matches tokens[i] (an opener). */
size_t
skipBalanced(const Tokens &toks, size_t i, const char *open,
             const char *close)
{
    int depth = 0;
    for (; i < toks.size(); ++i) {
        if (toks[i].is(open))
            ++depth;
        else if (toks[i].is(close) && --depth == 0)
            return i + 1;
    }
    return toks.size();
}

// ---------------------------------------------------------------------------
// Rule: determinism
//
// (a) No iteration (range-for or .begin()) over unordered_map /
//     unordered_set in simulation code — hash order is not part of
//     the simulated state, so any loop over it can silently change
//     trace output or simulation order between standard libraries.
//     The sanctioned escape is base/ordered.hh's sortedSnapshot().
// (b) No libc randomness or wall-clock time outside src/base: all
//     randomness flows through base/rng.hh, all time through the
//     simulated clock.

void
collectUnorderedNames(const Context &ctx, std::set<std::string> &names)
{
    for (const SourceFile &file : ctx.files) {
        if (!underSrc(file))
            continue;
        const Tokens &toks = file.tokens;
        for (size_t i = 0; i + 1 < toks.size(); ++i) {
            if (!toks[i].ident() ||
                (toks[i].text != "unordered_map" &&
                 toks[i].text != "unordered_set"))
                continue;
            if (!toks[i + 1].is("<"))
                continue;
            size_t j = skipBalanced(toks, i + 1, "<", ">");
            if (j < toks.size() && toks[j].ident())
                names.insert(toks[j].text);
        }
    }
}

void
ruleDeterminism(const Context &ctx, std::vector<Finding> &findings)
{
    std::set<std::string> unordered;
    collectUnorderedNames(ctx, unordered);

    static const std::set<std::string> kBannedIdents = {
        "rand", "srand", "drand48", "random_device", "system_clock",
    };

    for (const SourceFile &file : ctx.files) {
        if (!underSrc(file) || file.dir == "src/base")
            continue;
        const Tokens &toks = file.tokens;

        for (size_t i = 0; i < toks.size(); ++i) {
            // Range-for over an unordered container.
            if (toks[i].ident() && toks[i].text == "for" &&
                i + 1 < toks.size() && toks[i + 1].is("(")) {
                const size_t end = skipBalanced(toks, i + 1, "(", ")");
                // Locate the range-for ':' at paren depth 1.
                int depth = 0;
                size_t colon = 0;
                for (size_t j = i + 1; j < end; ++j) {
                    if (toks[j].is("(") || toks[j].is("[") ||
                        toks[j].is("{"))
                        ++depth;
                    else if (toks[j].is(")") || toks[j].is("]") ||
                             toks[j].is("}"))
                        --depth;
                    else if (toks[j].is(":") && depth == 1) {
                        colon = j;
                        break;
                    } else if (toks[j].is(";") && depth == 1) {
                        break;  // classic for-loop
                    }
                }
                if (colon != 0) {
                    bool snapshot = false;
                    std::string culprit;
                    for (size_t j = colon + 1; j + 1 < end; ++j) {
                        if (!toks[j].ident())
                            continue;
                        if (toks[j].text == "sortedSnapshot")
                            snapshot = true;
                        else if (unordered.count(toks[j].text))
                            culprit = toks[j].text;
                    }
                    if (!snapshot && !culprit.empty()) {
                        findings.push_back(
                            {"determinism", file.path, toks[i].line,
                             "iteration over unordered container '" +
                                 culprit +
                                 "' — hash order is nondeterministic; "
                                 "use sortedSnapshot() "
                                 "(base/ordered.hh)"});
                    }
                }
            }

            // .begin()/.cbegin() on an unordered container.
            if (i + 2 < toks.size() && toks[i].ident() &&
                unordered.count(toks[i].text) &&
                (toks[i + 1].is(".") || toks[i + 1].is("->")) &&
                (toks[i + 2].text == "begin" ||
                 toks[i + 2].text == "cbegin")) {
                findings.push_back(
                    {"determinism", file.path, toks[i].line,
                     "'" + toks[i].text +
                         "." + toks[i + 2].text +
                         "()' iterates an unordered container in hash "
                         "order; use sortedSnapshot() (base/ordered.hh)"});
            }

            // Banned randomness / wall-clock identifiers.
            if (toks[i].ident() && kBannedIdents.count(toks[i].text)) {
                findings.push_back(
                    {"determinism", file.path, toks[i].line,
                     "'" + toks[i].text +
                         "' is nondeterministic; use base/rng.hh or the "
                         "simulated clock"});
            }
            // time(...) — but not member calls or qualified names
            // other than std::time.
            if (toks[i].ident() && toks[i].text == "time" &&
                i + 1 < toks.size() && toks[i + 1].is("(")) {
                const bool member =
                    i > 0 && (toks[i - 1].is(".") || toks[i - 1].is("->"));
                const bool qualifiedNonStd =
                    i > 1 && toks[i - 1].is("::") &&
                    toks[i - 2].text != "std";
                if (!member && !qualifiedNonStd) {
                    findings.push_back(
                        {"determinism", file.path, toks[i].line,
                         "'time()' reads the wall clock; use the "
                         "simulated clock"});
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: checker-coverage
//
// Every TraceEventType enumerator must appear in a `case` of the
// InvariantChecker's dispatch in src/trace/invariants.cc, so new
// trace events cannot silently bypass invariant checking. Events
// that are intentionally not checked go on the allowlist below with
// a justification.

/**
 * Enumerators (name, line) of `enum class @p enum_name` declared in
 * @p path, in declaration order. Empty when the file or enum is
 * absent.
 */
std::vector<std::pair<std::string, int>>
parseEnumerators(const Context &ctx, const std::string &path,
                 const std::string &enum_name)
{
    std::vector<std::pair<std::string, int>> out;
    const SourceFile *file = ctx.find(path);
    if (!file)
        return out;
    const Tokens &toks = file->tokens;
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
        if (!(toks[i].is("enum") && toks[i + 1].is("class") &&
              toks[i + 2].text == enum_name))
            continue;
        size_t j = i + 3;
        while (j < toks.size() && !toks[j].is("{"))
            ++j;
        bool expectName = true;
        for (++j; j < toks.size() && !toks[j].is("}"); ++j) {
            if (toks[j].is(",")) {
                expectName = true;
            } else if (expectName && toks[j].ident()) {
                out.emplace_back(toks[j].text, toks[j].line);
                expectName = false;
            }
        }
        break;
    }
    return out;
}

/** Enumerators (name, line) of TraceEventType, in declaration order. */
std::vector<std::pair<std::string, int>>
parseTraceEnum(const Context &ctx)
{
    return parseEnumerators(ctx, "src/trace/trace.hh",
                            "TraceEventType");
}

void
ruleCheckerCoverage(const Context &ctx, std::vector<Finding> &findings)
{
    const auto enumerators = parseTraceEnum(ctx);
    if (enumerators.empty())
        return;

    const SourceFile *inv = ctx.find("src/trace/invariants.cc");
    if (!inv)
        return;

    // Enumerators intentionally not checked, with justification.
    static const std::set<std::string> kAllowedUnchecked = {
        // (none today — extend with a reason when an event is
        // deliberately outside the checker's model)
    };

    std::set<std::string> handled;
    const Tokens &toks = inv->tokens;
    for (size_t i = 0; i + 3 < toks.size(); ++i) {
        if (toks[i].is("case") && toks[i + 1].text == "TraceEventType" &&
            toks[i + 2].is("::") && toks[i + 3].ident())
            handled.insert(toks[i + 3].text);
    }

    for (const auto &[name, line] : enumerators) {
        if (name == "NumTypes" || handled.count(name) ||
            kAllowedUnchecked.count(name))
            continue;
        findings.push_back(
            {"checker-coverage", "src/trace/trace.hh", line,
             "TraceEventType::" + name +
                 " has no case in InvariantChecker "
                 "(src/trace/invariants.cc) and is not allowlisted"});
    }
}

// ---------------------------------------------------------------------------
// Rule: fault-site-coverage
//
// Every FaultSite enumerator must be (a) consulted somewhere in the
// simulator — the name appears at a call site outside src/fault and
// outside the checker — and (b) validated by the InvariantChecker —
// a `case FaultSite::X` in src/trace/invariants.cc's FaultInject
// dispatch. A site that is declared but never consulted is dead
// grammar (specs naming it silently do nothing); a site the checker
// does not know about lets faulted runs emit FaultInject events the
// invariant model never sanity-checks.

void
ruleFaultSiteCoverage(const Context &ctx, std::vector<Finding> &findings)
{
    const auto enumerators =
        parseEnumerators(ctx, "src/fault/fault.hh", "FaultSite");
    if (enumerators.empty())
        return;

    // Consult side: any `FaultSite :: Name` outside the declaring
    // header and the checker. Matching the bare qualified name (not
    // just shouldFire(FaultSite::X)) deliberately accepts indirect
    // consults — e.g. `write ? FaultSite::DeviceWrite : ...` feeding
    // a shouldFire(site) call.
    std::set<std::string> consulted;
    for (const SourceFile &file : ctx.files) {
        if (!underSrc(file) || file.dir == "src/fault" ||
            file.path == "src/trace/invariants.cc")
            continue;
        const Tokens &toks = file.tokens;
        for (size_t i = 0; i + 2 < toks.size(); ++i) {
            if (toks[i].text == "FaultSite" && toks[i + 1].is("::") &&
                toks[i + 2].ident())
                consulted.insert(toks[i + 2].text);
        }
    }

    // Checker side: `case FaultSite :: Name` in invariants.cc.
    std::set<std::string> checked;
    if (const SourceFile *inv = ctx.find("src/trace/invariants.cc")) {
        const Tokens &toks = inv->tokens;
        for (size_t i = 0; i + 3 < toks.size(); ++i) {
            if (toks[i].is("case") && toks[i + 1].text == "FaultSite" &&
                toks[i + 2].is("::") && toks[i + 3].ident())
                checked.insert(toks[i + 3].text);
        }
    }

    for (const auto &[name, line] : enumerators) {
        if (name == "NumSites")
            continue;
        if (!consulted.count(name)) {
            findings.push_back(
                {"fault-site-coverage", "src/fault/fault.hh", line,
                 "FaultSite::" + name +
                     " is never consulted (no use outside src/fault "
                     "and the checker) — dead fault grammar"});
        }
        if (!checked.count(name)) {
            findings.push_back(
                {"fault-site-coverage", "src/fault/fault.hh", line,
                 "FaultSite::" + name +
                     " has no case in the InvariantChecker's "
                     "FaultInject dispatch (src/trace/invariants.cc)"});
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: layering
//
// #includes must respect the subsystem DAG (see docs/ANALYSIS.md):
//
//   base < {trace, fault} < sim < {mem, alloc} < kobj < core
//        < {fs, net} < {policy, platform, workload} < tools
//
// A file may include headers of its own layer or lower layers only;
// an upward include inverts the dependency graph.

const std::map<std::string, int> &
layerRanks()
{
    static const std::map<std::string, int> kRanks = {
        {"src/base", 0},
        {"src/trace", 1}, {"src/fault", 1},
        {"src/sim", 2},
        {"src/mem", 3}, {"src/alloc", 3},
        {"src/kobj", 4},
        {"src/core", 5},
        {"src/fs", 6}, {"src/net", 6},
        {"src/policy", 7}, {"src/platform", 7}, {"src/workload", 7},
        {"tools", 8},
    };
    return kRanks;
}

void
ruleLayering(const Context &ctx, std::vector<Finding> &findings)
{
    const auto &ranks = layerRanks();
    for (const SourceFile &file : ctx.files) {
        auto mine = ranks.find(file.dir);
        if (mine == ranks.end())
            continue;
        for (const Include &inc : file.includes) {
            if (inc.angled)
                continue;
            // Project includes are rooted at src/ ("mem/frame.hh")
            // except tools', which are repo-rooted.
            std::string dir = inc.target.substr(0, inc.target.find('/'));
            auto theirs = ranks.find(
                dir == "tools" ? "tools" : "src/" + dir);
            if (theirs == ranks.end())
                continue;
            if (theirs->second > mine->second) {
                findings.push_back(
                    {"layering", file.path, inc.line,
                     file.dir + " (layer " +
                         std::to_string(mine->second) +
                         ") must not include " + inc.target +
                         " (layer " + std::to_string(theirs->second) +
                         ") — upward dependency"});
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: units
//
// Public APIs in mem/, fs/ and alloc/ headers must not take raw
// uint64_t/int64_t parameters where a strong unit exists
// (Tick/Bytes/Pfn/TierId/FrameCount, base/units.hh). Identity-like
// values that have no unit (inode numbers, sectors, keys, indices,
// seeds, transaction ids, generation counters) are recognised by
// parameter-name suffix and stay raw.

bool
unitAllowlisted(const std::string &name)
{
    static const std::vector<std::string> kSuffixes = {
        "id", "ino", "sector", "key", "seed", "index", "tx",
        "generation", "cpu", "socket",
    };
    for (const std::string &suffix : kSuffixes) {
        if (name.size() >= suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0)
            return true;
    }
    return false;
}

void
ruleUnits(const Context &ctx, std::vector<Finding> &findings)
{
    static const std::set<std::string> kScopedDirs = {
        "src/mem", "src/fs", "src/alloc",
    };

    for (const SourceFile &file : ctx.files) {
        if (!file.header || !kScopedDirs.count(file.dir))
            continue;
        const Tokens &toks = file.tokens;

        // Scope tracking: struct members/params default public,
        // class ones private; tokens inside function bodies (plain
        // blocks) are skipped.
        enum class FrameType { Class, Struct, Namespace, Enum, Block };
        struct ScopeFrame { FrameType type; bool publicAccess; };
        std::vector<ScopeFrame> scopes;
        bool pendingValid = false;
        ScopeFrame pending{FrameType::Block, true};
        int parenDepth = 0;

        auto innermostRecord = [&]() -> const ScopeFrame * {
            for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
                if (it->type == FrameType::Class ||
                    it->type == FrameType::Struct)
                    return &*it;
                if (it->type == FrameType::Block)
                    return nullptr;  // inside a function body
            }
            return nullptr;
        };

        for (size_t i = 0; i < toks.size(); ++i) {
            const Token &tok = toks[i];

            if (tok.ident() && tok.text == "template" &&
                i + 1 < toks.size() && toks[i + 1].is("<")) {
                i = skipBalanced(toks, i + 1, "<", ">") - 1;
                continue;
            }
            if (tok.ident() &&
                (tok.text == "class" || tok.text == "struct") &&
                !(i > 0 && toks[i - 1].is("enum"))) {
                pendingValid = true;
                pending = {tok.text == "class" ? FrameType::Class
                                               : FrameType::Struct,
                           tok.text == "struct"};
                continue;
            }
            if (tok.ident() && tok.text == "namespace") {
                pendingValid = true;
                pending = {FrameType::Namespace, true};
                continue;
            }
            if (tok.ident() && tok.text == "enum") {
                pendingValid = true;
                pending = {FrameType::Enum, true};
                continue;
            }
            if (tok.is(";") && parenDepth == 0) {
                pendingValid = false;  // forward declaration
                continue;
            }
            if (tok.is("{")) {
                scopes.push_back(pendingValid
                                     ? pending
                                     : ScopeFrame{FrameType::Block, true});
                pendingValid = false;
                continue;
            }
            if (tok.is("}")) {
                if (!scopes.empty())
                    scopes.pop_back();
                continue;
            }
            if (tok.is("("))
                ++parenDepth;
            else if (tok.is(")"))
                parenDepth = parenDepth > 0 ? parenDepth - 1 : 0;

            if (tok.ident() &&
                (tok.text == "uint64_t" || tok.text == "int64_t") &&
                parenDepth >= 1) {
                // Parameter position: next token is the name.
                if (i + 1 >= toks.size() || !toks[i + 1].ident())
                    continue;
                // Not inside a function body (inline for-loops etc.).
                const ScopeFrame *record = innermostRecord();
                if (!scopes.empty() &&
                    scopes.back().type == FrameType::Block)
                    continue;
                // Private members' params are an implementation
                // detail; the rule polices the public surface.
                if (record && !record->publicAccess)
                    continue;
                // Exclude classic for(...;...;...) heads: a param
                // list never contains ';' before its ')'.
                bool isLoopHead = false;
                int depth = 1;
                for (size_t j = i + 1; j < toks.size() && depth > 0; ++j) {
                    if (toks[j].is("("))
                        ++depth;
                    else if (toks[j].is(")"))
                        --depth;
                    else if (toks[j].is(";") && depth == 1) {
                        isLoopHead = true;
                        break;
                    }
                }
                if (isLoopHead)
                    continue;
                const std::string &name = toks[i + 1].text;
                if (unitAllowlisted(name))
                    continue;
                findings.push_back(
                    {"units", file.path, tok.line,
                     "raw " + tok.text + " parameter '" + name +
                         "' in a public " + file.dir +
                         " API; use a strong unit from base/units.hh "
                         "(Tick/Bytes/Pfn/TierId/FrameCount) or an "
                         "allowlisted identity name"});
            }

            if (tok.ident() &&
                (tok.text == "public" || tok.text == "private" ||
                 tok.text == "protected") &&
                i + 1 < toks.size() && toks[i + 1].is(":") &&
                !scopes.empty() &&
                (scopes.back().type == FrameType::Class ||
                 scopes.back().type == FrameType::Struct)) {
                scopes.back().publicAccess = tok.text == "public";
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: trace-args
//
// Every Tracer::emit(TraceEventType::X, ...) call site must pass
// exactly the number of payload arguments that X's EventSpec in
// src/trace/trace.cc declares. Fewer args silently records zeros
// under named columns; more args is a spec drift.

void
ruleTraceArgs(const Context &ctx, std::vector<Finding> &findings)
{
    const auto enumerators = parseTraceEnum(ctx);
    const SourceFile *tcc = ctx.find("src/trace/trace.cc");
    if (enumerators.empty() || !tcc)
        return;

    // argCounts in kEventSpecs order (== enum order).
    std::vector<unsigned> counts;
    const Tokens &toks = tcc->tokens;
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
        if (!(toks[i].ident() && toks[i].text == "kEventSpecs"))
            continue;
        size_t j = i;
        while (j < toks.size() && !toks[j].is("{"))
            ++j;
        const size_t end = skipBalanced(toks, j, "{", "}");
        int depth = 0;
        bool wantCount = false;
        for (; j < end; ++j) {
            if (toks[j].is("{")) {
                ++depth;
                if (depth == 2)
                    wantCount = true;  // entry opened; count follows name
            } else if (toks[j].is("}")) {
                --depth;
            } else if (wantCount && depth == 2 &&
                       toks[j].kind == Token::Kind::Number) {
                counts.push_back(
                    static_cast<unsigned>(std::stoul(toks[j].text)));
                wantCount = false;
            }
        }
        break;
    }

    std::map<std::string, unsigned> spec;
    for (size_t i = 0; i < enumerators.size() && i < counts.size(); ++i)
        spec[enumerators[i].first] = counts[i];

    for (const SourceFile &file : ctx.files) {
        if (!underSrc(file))
            continue;
        const Tokens &ts = file.tokens;
        for (size_t i = 0; i + 5 < ts.size(); ++i) {
            if (!(ts[i].ident() && ts[i].text == "emit" &&
                  ts[i + 1].is("(") && ts[i + 2].text == "TraceEventType" &&
                  ts[i + 3].is("::") && ts[i + 4].ident()))
                continue;
            const std::string &event = ts[i + 4].text;
            auto it = spec.find(event);
            if (it == spec.end())
                continue;
            const size_t end = skipBalanced(ts, i + 1, "(", ")");
            unsigned commas = 0;
            int depth = 0;
            for (size_t j = i + 1; j < end; ++j) {
                if (ts[j].is("(") || ts[j].is("{") || ts[j].is("["))
                    ++depth;
                else if (ts[j].is(")") || ts[j].is("}") || ts[j].is("]"))
                    --depth;
                else if (ts[j].is(",") && depth == 1)
                    ++commas;
            }
            if (commas != it->second) {
                findings.push_back(
                    {"trace-args", file.path, ts[i].line,
                     "emit(TraceEventType::" + event + ") passes " +
                         std::to_string(commas) + " args but the "
                         "EventSpec declares " +
                         std::to_string(it->second)});
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: hot-path-alloc
//
// A function body that emits trace events is a per-event hot path:
// frame alloc/free, LRU transitions, and migration loops run for
// every simulated page operation. An explicit heap allocation there
// (`new`, `std::make_unique`, `std::make_shared`) is per-event
// churn that the arena/scratch-reuse design removed; steady-state
// hot paths must reuse memory. Deliberate amortised growth (e.g. an
// arena appending a chunk) is suppressed with a justification
// comment of the form `klint:allow(hot-path-alloc): <why>`.

void
ruleHotPathAlloc(const Context &ctx, std::vector<Finding> &findings)
{
    for (const SourceFile &file : ctx.files) {
        if (!underSrc(file))
            continue;
        const Tokens &toks = file.tokens;

        // One frame per open '{'. Function-body frames collect
        // allocations and emit sightings; plain blocks (if/for/
        // namespace/class bodies) forward both to their parent so
        // an emit in one branch pairs with an allocation in another
        // branch of the same function.
        struct BodyFrame
        {
            bool function = false;
            bool emits = false;
            std::vector<size_t> allocs;  ///< token indices
        };
        std::vector<BodyFrame> stack;

        auto isFunctionOpen = [&](size_t open) {
            size_t j = open;
            while (j > 0 && toks[j - 1].ident() &&
                   (toks[j - 1].text == "const" ||
                    toks[j - 1].text == "noexcept" ||
                    toks[j - 1].text == "override" ||
                    toks[j - 1].text == "final" ||
                    toks[j - 1].text == "mutable")) {
                --j;
            }
            if (j == 0 || !toks[j - 1].is(")"))
                return false;
            // Find the matching '(' and make sure this is not a
            // control-flow head (if/for/while/switch/catch).
            int depth = 0;
            size_t k = j - 1;
            while (true) {
                if (toks[k].is(")"))
                    ++depth;
                else if (toks[k].is("(") && --depth == 0)
                    break;
                if (k == 0)
                    return false;
                --k;
            }
            if (k == 0)
                return true;
            const Token &head = toks[k - 1];
            return !(head.ident() &&
                     (head.text == "if" || head.text == "for" ||
                      head.text == "while" || head.text == "switch" ||
                      head.text == "catch"));
        };

        for (size_t i = 0; i < toks.size(); ++i) {
            const Token &tok = toks[i];
            if (tok.is("{")) {
                BodyFrame frame;
                frame.function = isFunctionOpen(i);
                stack.push_back(std::move(frame));
                continue;
            }
            if (tok.is("}")) {
                if (stack.empty())
                    continue;
                BodyFrame frame = std::move(stack.back());
                stack.pop_back();
                if (frame.function) {
                    if (frame.emits) {
                        for (const size_t alloc : frame.allocs) {
                            findings.push_back(
                                {"hot-path-alloc", file.path,
                                 toks[alloc].line,
                                 "heap allocation ('" +
                                     toks[alloc].text +
                                     "') in a trace-emitting hot "
                                     "path; reuse scratch/arena "
                                     "storage, or justify with "
                                     "klint:allow(hot-path-alloc): "
                                     "<why>"});
                        }
                    }
                } else if (!stack.empty()) {
                    BodyFrame &parent = stack.back();
                    parent.emits = parent.emits || frame.emits;
                    parent.allocs.insert(parent.allocs.end(),
                                         frame.allocs.begin(),
                                         frame.allocs.end());
                }
                continue;
            }
            if (stack.empty() || !tok.ident())
                continue;
            if (tok.text == "emit" && i + 4 < toks.size() &&
                toks[i + 1].is("(") &&
                toks[i + 2].text == "TraceEventType" &&
                toks[i + 3].is("::")) {
                stack.back().emits = true;
            } else if (tok.text == "new") {
                if (!(i > 0 && toks[i - 1].ident() &&
                      toks[i - 1].text == "operator"))
                    stack.back().allocs.push_back(i);
            } else if ((tok.text == "make_unique" ||
                        tok.text == "make_shared") &&
                       i + 1 < toks.size() &&
                       (toks[i + 1].is("<") || toks[i + 1].is("("))) {
                stack.back().allocs.push_back(i);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: include-hygiene
//
// Headers carry a canonical KLOC_<PATH>_HH guard (#ifndef/#define
// pair); includes never use parent-relative paths.

void
ruleIncludeHygiene(const Context &ctx, std::vector<Finding> &findings)
{
    for (const SourceFile &file : ctx.files) {
        if (file.header) {
            std::string expected = file.path;
            if (expected.compare(0, 4, "src/") == 0)
                expected = expected.substr(4);
            for (char &c : expected) {
                if (c == '/' || c == '.')
                    c = '_';
                else
                    c = static_cast<char>(std::toupper(
                        static_cast<unsigned char>(c)));
            }
            expected = "KLOC_" + expected;

            if (file.guardIfndef.empty()) {
                findings.push_back({"include-hygiene", file.path, 1,
                                    "missing header guard (expected " +
                                        expected + ")"});
            } else if (file.guardIfndef != expected) {
                findings.push_back(
                    {"include-hygiene", file.path, 1,
                     "header guard " + file.guardIfndef +
                         " does not match canonical " + expected});
            } else if (file.guardDefine != file.guardIfndef) {
                findings.push_back(
                    {"include-hygiene", file.path, 1,
                     "#ifndef " + file.guardIfndef +
                         " is not followed by a matching #define"});
            }
        }
        for (const Include &inc : file.includes) {
            if (inc.target.find("../") != std::string::npos) {
                findings.push_back(
                    {"include-hygiene", file.path, inc.line,
                     "parent-relative include \"" + inc.target +
                         "\"; include repo-rooted paths instead"});
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: no-mutable-global
//
// The RunPool (base/run_pool.hh) executes simulation runs
// concurrently, and the determinism-under-parallelism contract rests
// on runs being shared-nothing: every piece of run state hangs off a
// Machine or something the run closure owns. Mutable static-storage
// data — namespace-scope variables, function-local `static`s,
// `static` data members — is shared across concurrently executing
// runs, so it is both a data race and a cross-run determinism leak
// (run N observing residue from run N-1). Const/constexpr/constinit
// data is immutable and fine. The rule covers bench/ and tests/ too:
// both drive pooled runs (bench sweeps, the fuzz harness), so a
// mutable global there leaks state across runs just the same.
//
// The only sanctioned exception is the logging singleton
// (src/base/logging.cc, atomic level, append-only sink); anything
// else needs a `klint:allow(no-mutable-global): <why>` justification.
//
// Token-level, so two pragmatic blind spots: a type whose const-ness
// lives behind a typedef is trusted if `const` appears anywhere in
// the declaration, and a declaration whose template arguments
// contain '(' (e.g. std::function signatures) reads as a function
// declaration. Neither pattern occurs at static storage in this
// repo.

bool
mutableGlobalAllowed(const SourceFile &file)
{
    static const std::set<std::string> kAllow = {
        "src/base/logging.cc",  // the Logger singleton
    };
    return kAllow.count(file.path) > 0;
}

/**
 * From toks[i] == "<", the index past the matching ">", treating the
 * run as template arguments. Returns i + 1 (no skip) if the brackets
 * do not balance before the statement ends — then '<' was a
 * comparison, not an argument list.
 */
size_t
skipTemplateArgs(const Tokens &toks, size_t i)
{
    int depth = 0;
    for (size_t j = i; j < toks.size(); ++j) {
        if (toks[j].is("<"))
            ++depth;
        else if (toks[j].is(">") && --depth == 0)
            return j + 1;
        else if (toks[j].is(";") || toks[j].is("{"))
            break;
    }
    return i + 1;
}

/**
 * Scan one declaration starting at toks[i] and decide whether it is
 * a mutable variable. Fills @p name with the declared identifier and
 * @p line with its location. Stops at the declaration's terminator:
 * ';' '=' or '{' mean a variable (flag unless const-qualified); '('
 * means a function (never flagged).
 */
bool
declarationIsMutableVariable(const Tokens &toks, size_t i,
                             std::string &name, int &line)
{
    std::string lastIdent;
    int lastLine = 0;
    for (size_t j = i; j < toks.size();) {
        const Token &tok = toks[j];
        if (tok.ident() &&
            (tok.text == "const" || tok.text == "constexpr" ||
             tok.text == "constinit")) {
            return false;
        }
        if (tok.is("(") || tok.is(")"))
            return false;  // function declarator (or macro call)
        if (tok.is(";") || tok.is("=") || tok.is("{")) {
            if (lastIdent.empty())
                return false;
            name = lastIdent;
            line = lastLine;
            return true;
        }
        if (tok.is("<")) {
            j = skipTemplateArgs(toks, j);
            continue;
        }
        if (tok.is("[")) {  // array extent: the name came before it
            j = skipBalanced(toks, j, "[", "]");
            continue;
        }
        if (tok.ident()) {
            lastIdent = tok.text;
            lastLine = tok.line;
        }
        ++j;
    }
    return false;
}

void
ruleNoMutableGlobal(const Context &ctx, std::vector<Finding> &findings)
{
    // Keywords that open a statement which is not a variable
    // declaration (or that declares a type/alias, not storage).
    static const std::set<std::string> kNotAVariable = {
        "namespace", "using",  "typedef", "template", "class",
        "struct",    "union",  "enum",    "extern",   "friend",
        "static_assert",       "if",      "for",      "while",
        "switch",    "return", "public",  "private",  "protected",
    };

    for (const SourceFile &file : ctx.files) {
        if (!underRunScope(file) || mutableGlobalAllowed(file))
            continue;
        const Tokens &toks = file.tokens;

        // Pass 1: every `static` / `thread_local` declaration,
        // regardless of scope. thread_local counts: a pool worker
        // reusing a thread across runs would leak state run-to-run.
        for (size_t i = 0; i < toks.size(); ++i) {
            if (!toks[i].ident() ||
                (toks[i].text != "static" &&
                 toks[i].text != "thread_local"))
                continue;
            std::string name;
            int line = 0;
            if (declarationIsMutableVariable(toks, i + 1, name, line)) {
                findings.push_back(
                    {"no-mutable-global", file.path, line,
                     "mutable " + toks[i].text + " variable '" + name +
                         "' is shared across concurrent RunPool runs; "
                         "hang run state off the Machine, make it "
                         "const/constexpr, or justify with "
                         "klint:allow(no-mutable-global): <why>"});
            }
        }

        // Pass 2: namespace-scope variables without `static` (still
        // static storage). Track brace scopes so only declarations at
        // namespace/global scope are considered.
        enum class Scope { Namespace, Other };
        std::vector<Scope> scopes;
        Scope pending = Scope::Other;
        bool atNamespaceScope = true;
        bool statementStart = true;
        for (size_t i = 0; i < toks.size(); ++i) {
            const Token &tok = toks[i];
            if (tok.is("{")) {
                scopes.push_back(pending);
                pending = Scope::Other;
                atNamespaceScope =
                    std::all_of(scopes.begin(), scopes.end(),
                                [](Scope s) {
                                    return s == Scope::Namespace;
                                });
                statementStart = true;
                continue;
            }
            if (tok.is("}")) {
                if (!scopes.empty())
                    scopes.pop_back();
                atNamespaceScope =
                    std::all_of(scopes.begin(), scopes.end(),
                                [](Scope s) {
                                    return s == Scope::Namespace;
                                });
                statementStart = true;
                continue;
            }
            if (tok.is(";")) {
                statementStart = true;
                // `using namespace x;` and `namespace a = b;` end
                // here without opening a brace: the pending marker
                // must not leak onto the next unrelated '{' (which
                // would score a function body as namespace scope).
                pending = Scope::Other;
                continue;
            }
            if (tok.ident() && tok.text == "namespace")
                pending = Scope::Namespace;

            if (!statementStart)
                continue;
            statementStart = false;
            if (!atNamespaceScope || !tok.ident())
                continue;
            if (kNotAVariable.count(tok.text) ||
                tok.text == "static" || tok.text == "thread_local")
                continue;  // pass 1 owns static/thread_local
            std::string name;
            int line = 0;
            if (declarationIsMutableVariable(toks, i, name, line)) {
                findings.push_back(
                    {"no-mutable-global", file.path, line,
                     "mutable namespace-scope variable '" + name +
                         "' is shared across concurrent RunPool runs; "
                         "hang run state off the Machine, make it "
                         "const/constexpr, or justify with "
                         "klint:allow(no-mutable-global): <why>"});
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: suppression-format
//
// A suppression that names no rule or gives no reason defeats the
// audit trail: six months later nobody knows what was waived or why.
// The only accepted form is
//
//     klint:allow(<rule>): <rationale>
//
// with <rule> a name from the catalogue (or "all"). Anything that
// *looks* like a suppression attempt — "klint" followed by ":" and
// "allow" — but deviates from that form is flagged and, critically,
// suppresses nothing (see suppressionCovers in klint.cc). Rule-name
// placeholders in documentation (`allow(<rule>)`) are ignored.

void
ruleSuppressionFormat(const Context &ctx, std::vector<Finding> &findings)
{
    std::set<std::string> known = {"all"};
    for (const Rule &rule : ruleCatalogue())
        known.insert(rule.name);

    for (const SourceFile &file : ctx.files) {
        for (const auto &[line, comment] : file.comments) {
            size_t pos = 0;
            while ((pos = comment.find("klint", pos)) !=
                   std::string::npos) {
                size_t p = pos + 5;
                pos += 5;
                while (p < comment.size() && comment[p] == ' ')
                    ++p;
                if (p >= comment.size() || comment[p] != ':')
                    continue;  // prose mention, not a suppression
                ++p;
                while (p < comment.size() && comment[p] == ' ')
                    ++p;
                if (comment.compare(p, 5, "allow") != 0)
                    continue;
                p += 5;
                // From here on this is a suppression attempt; it
                // must parse as allow(<known-rule>): <rationale>.
                std::string name;
                if (p < comment.size() && comment[p] == '(') {
                    const size_t close = comment.find(')', p);
                    if (close != std::string::npos) {
                        name = comment.substr(p + 1, close - p - 1);
                        p = close + 1;
                    }
                }
                if (name.find('<') != std::string::npos)
                    continue;  // documentation placeholder
                if (name.empty()) {
                    findings.push_back(
                        {"suppression-format", file.path, line,
                         "suppression names no rule; use "
                         "klint:allow(<rule>): <rationale>"});
                    continue;
                }
                if (!known.count(name)) {
                    findings.push_back(
                        {"suppression-format", file.path, line,
                         "suppression names unknown rule '" + name +
                             "'; see klint --list-rules"});
                    continue;
                }
                if (!suppressionCovers(comment, name)) {
                    findings.push_back(
                        {"suppression-format", file.path, line,
                         "suppression of '" + name +
                             "' lacks a rationale and is ignored; use "
                         "klint:allow(" + name + "): <rationale>"});
                }
            }
        }
    }
}

} // namespace

// Interprocedural rules, implemented over the symbol index and call
// graph in rules_graph.cc.
void ruleReentrancyHazardEntry(const Context &, std::vector<Finding> &);
void ruleIteratorInvalidationEntry(const Context &,
                                   std::vector<Finding> &);
void ruleDeterminismTaintEntry(const Context &, std::vector<Finding> &);
void ruleShardConfinementEntry(const Context &, std::vector<Finding> &);

const std::vector<Rule> &
ruleCatalogue()
{
    static const std::vector<Rule> kRules = {
        {"determinism",
         "no unordered iteration / wall-clock / libc randomness in "
         "simulation code",
         ruleDeterminism},
        {"determinism-taint",
         "unordered-iteration-order values stay out of traces, "
         "policy decisions and BENCH metrics",
         ruleDeterminismTaintEntry},
        {"reentrancy-hazard",
         "no index into a container held across a call reaching a "
         "mutator of it",
         ruleReentrancyHazardEntry},
        {"iterator-invalidation",
         "no mutation of a container during a range-for or gang "
         "walk over it",
         ruleIteratorInvalidationEntry},
        {"shard-confinement",
         "shard-scoped code never writes MachineCore-shared state "
         "outside *AtBarrier methods",
         ruleShardConfinementEntry},
        {"checker-coverage",
         "every TraceEventType is handled by the InvariantChecker",
         ruleCheckerCoverage},
        {"fault-site-coverage",
         "every FaultSite is consulted in the simulator and checked "
         "by the InvariantChecker",
         ruleFaultSiteCoverage},
        {"layering",
         "#includes respect the subsystem DAG",
         ruleLayering},
        {"units",
         "public mem/fs/alloc APIs use strong units, not raw 64-bit ints",
         ruleUnits},
        {"trace-args",
         "emit() argument counts match the event specs",
         ruleTraceArgs},
        {"hot-path-alloc",
         "no per-event heap allocation in trace-emitting hot paths",
         ruleHotPathAlloc},
        {"include-hygiene",
         "canonical header guards; no parent-relative includes",
         ruleIncludeHygiene},
        {"no-mutable-global",
         "no mutable static-storage state shared across RunPool runs",
         ruleNoMutableGlobal},
        {"suppression-format",
         "suppression comments carry a rule name and a rationale",
         ruleSuppressionFormat},
    };
    return kRules;
}

} // namespace klint
