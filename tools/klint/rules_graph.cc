/**
 * @file
 * The interprocedural klint rules. Unlike rules.cc these reason over
 * the symbol index (indexer.hh) and the project call graph
 * (callgraph.hh) instead of raw token streams alone:
 *
 *   reentrancy-hazard     an index/reference into a mutable container
 *                         is held across a call that can transitively
 *                         reach a mutator of that container — the
 *                         PR-7 findKnode bug class, where draining
 *                         scheduled callbacks re-entered the per-CPU
 *                         MRU list mid-rotation.
 *   iterator-invalidation a container is mutated from inside a
 *                         range-for over it, or a gang-lookup's
 *                         backing table is mutated while the scratch
 *                         results are still being walked.
 *   determinism-taint     a value whose content depends on unordered-
 *                         container iteration order flows into trace
 *                         emission, a policy decision, or a BENCH
 *                         metric without passing sortedSnapshot().
 *   shard-confinement     shard-scoped code (ShardContext methods and
 *                         functions taking a ShardContext&) reaches a
 *                         write of MachineCore-shared state outside a
 *                         barrier-drain (*AtBarrier) method — the
 *                         sharded core's epoch/barrier phase split
 *                         (docs/SHARDING.md).
 *
 * Known token-level blind spots, accepted deliberately: a conditional
 * `return` in a braceless `if` reads as an unconditional exit in the
 * safe-tail scan, and taint does not follow values through function
 * arguments (only through returns). Both are rare in this codebase
 * and cheap to suppress when they misfire.
 */

#include "tools/klint/klint.hh"

#include <map>
#include <set>
#include <string>

namespace klint {

namespace {

using Tokens = std::vector<Token>;

/** Index of the bracket matching toks[i] (an opener), or end. */
int
matchFwd(const Tokens &toks, int i, const char *open, const char *close)
{
    int depth = 0;
    for (int n = static_cast<int>(toks.size()); i < n; ++i) {
        if (toks[i].is(open))
            ++depth;
        else if (toks[i].is(close) && --depth == 0)
            return i;
    }
    return static_cast<int>(toks.size()) - 1;
}

struct LoopInfo
{
    int forTok = 0;    ///< the 'for' keyword
    int headOpen = 0;  ///< '(' of the loop head
    int headClose = 0; ///< matching ')'
    int colon = -1;    ///< range-for ':' at head depth 1, or -1
    int bodyBegin = 0; ///< '{' (braced) or headClose (single stmt)
    int bodyEnd = 0;   ///< matching '}' or the terminating ';'
};

/** All for-loops (classic and range) in toks[begin, end). */
std::vector<LoopInfo>
findLoops(const Tokens &toks, int begin, int end)
{
    std::vector<LoopInfo> loops;
    for (int i = begin; i < end; ++i) {
        if (!toks[i].ident() || toks[i].text != "for" ||
            i + 1 >= end || !toks[i + 1].is("("))
            continue;
        LoopInfo loop;
        loop.forTok = i;
        loop.headOpen = i + 1;
        loop.headClose = matchFwd(toks, i + 1, "(", ")");
        int depth = 0;
        for (int j = loop.headOpen; j < loop.headClose; ++j) {
            if (toks[j].is("(") || toks[j].is("[") || toks[j].is("{"))
                ++depth;
            else if (toks[j].is(")") || toks[j].is("]") ||
                     toks[j].is("}"))
                --depth;
            else if (toks[j].is(":") && depth == 1) {
                loop.colon = j;
                break;
            } else if (toks[j].is(";") && depth == 1) {
                break;
            }
        }
        const int b = loop.headClose + 1;
        if (b < end && toks[b].is("{")) {
            loop.bodyBegin = b;
            loop.bodyEnd = matchFwd(toks, b, "{", "}");
        } else {
            loop.bodyBegin = loop.headClose;
            int d = 0;
            int j = b;
            for (; j < end; ++j) {
                if (toks[j].is("(") || toks[j].is("[") || toks[j].is("{"))
                    ++d;
                else if (toks[j].is(")") || toks[j].is("]") ||
                         toks[j].is("}"))
                    --d;
                else if (toks[j].is(";") && d == 0)
                    break;
            }
            loop.bodyEnd = j;
        }
        loops.push_back(loop);
    }
    return loops;
}

/** Body token ranges of functions nested inside @p fn (lambdas). */
std::vector<std::pair<int, int>>
nestedRanges(const FileIndex &index, const FunctionDef &fn)
{
    std::vector<std::pair<int, int>> ranges;
    for (const FunctionDef &other : index.functions) {
        if (&other != &fn && other.bodyBegin > fn.bodyBegin &&
            other.bodyEnd <= fn.bodyEnd)
            ranges.emplace_back(other.bodyBegin, other.bodyEnd);
    }
    return ranges;
}

bool
inAnyRange(const std::vector<std::pair<int, int>> &ranges, int tok)
{
    for (const auto &[a, b] : ranges)
        if (tok > a && tok < b)
            return true;
    return false;
}

/** Is @p fn nested inside another function in @p index? */
bool
isNestedDef(const FileIndex &index, const FunctionDef &fn)
{
    for (const FunctionDef &other : index.functions) {
        if (&other != &fn && fn.bodyBegin > other.bodyBegin &&
            fn.bodyEnd <= other.bodyEnd)
            return true;
    }
    return false;
}

// ---------------------------------------------------------------------------
// Rule: reentrancy-hazard

/**
 * Safe-tail scan for a hazardous event ending just before @p from:
 * the tail is safe iff control exits (return/break/throw) before any
 * *positional* use of the loop state, and before the loop body ends
 * (falling off the body re-reads the index in the loop condition).
 *
 * Positional uses are subscripts into a held container name
 * (`list[i]`, `list[0]`) and mutator calls on a held name whose
 * arguments mention an index variable (`erase(begin() + i)`). An
 * index variable read as a plain scalar — charging `i * stepCost` of
 * CPU time, say — does not dereference the container and is fine.
 */
bool
safeTail(const Tokens &toks, int from, int bodyEnd,
         const std::set<std::string> &indexVars,
         const std::set<std::string> &heldNames)
{
    for (int j = from; j < bodyEnd; ++j) {
        const Token &t = toks[j];
        if (!t.ident())
            continue;
        if (t.text == "return" || t.text == "break" || t.text == "throw")
            return true;
        if (!heldNames.count(t.text))
            continue;
        if (j + 1 < bodyEnd && toks[j + 1].is("["))
            return false;
        if (j + 3 < bodyEnd &&
            (toks[j + 1].is(".") || toks[j + 1].is("->")) &&
            isMutatorMethod(toks[j + 2].text) && toks[j + 3].is("(")) {
            const int close = matchFwd(toks, j + 3, "(", ")");
            for (int k = j + 4; k >= 0 && k < close; ++k)
                if (toks[k].ident() && indexVars.count(toks[k].text))
                    return false;
        }
    }
    return false;
}

void
ruleReentrancyHazard(const Context &ctx, std::vector<Finding> &findings)
{
    const auto &nodes = ctx.graph.nodes();
    for (size_t n = 0; n < nodes.size(); ++n) {
        const FunctionDef &fn = *nodes[n].def;
        const SourceFile *file = ctx.find(nodes[n].file);
        const FileIndex *index = ctx.findIndex(nodes[n].file);
        if (!file || !index)
            continue;
        const Tokens &toks = file->tokens;
        const auto nested = nestedRanges(*index, fn);

        for (const LoopInfo &loop :
             findLoops(toks, fn.bodyBegin + 1, fn.bodyEnd)) {
            if (loop.colon >= 0 || inAnyRange(nested, loop.forTok))
                continue;  // range-fors: iterator-invalidation's turf

            // Index variables declared in the init clause.
            std::set<std::string> indexVars;
            for (int j = loop.headOpen + 1; j < loop.headClose; ++j) {
                if (toks[j].is(";"))
                    break;
                if (toks[j].ident() && j + 1 < loop.headClose &&
                    toks[j + 1].is("=") &&
                    !(j + 2 < loop.headClose && toks[j + 2].is("=")))
                    indexVars.insert(toks[j].text);
            }

            // Containers the loop holds an index/reference into:
            // anything subscripted in the loop, plus anything whose
            // size() bounds the condition.
            std::map<std::string, std::set<std::string>> held;
            for (int j = loop.headOpen + 1; j < loop.bodyEnd; ++j) {
                if (!toks[j].ident())
                    continue;
                const bool subscripted =
                    j + 1 < loop.bodyEnd && toks[j + 1].is("[");
                const bool sizeBound =
                    j < loop.headClose && j + 2 < loop.headClose &&
                    (toks[j + 1].is(".") || toks[j + 1].is("->")) &&
                    toks[j + 2].text == "size";
                if (!subscripted && !sizeBound)
                    continue;
                const std::string root =
                    resolveRoot(fn, toks[j].text, false);
                if (!root.empty())
                    held[root].insert(toks[j].text);
            }
            if (held.empty())
                continue;

            const int lo = loop.bodyBegin, hi = loop.bodyEnd;

            for (const CallSite &call : fn.calls) {
                if (call.tok <= lo || call.tok >= hi ||
                    inAnyRange(nested, call.tok))
                    continue;
                const int after =
                    matchFwd(toks, call.tok + 1, "(", ")") + 1;
                for (const auto &[root, names] : held) {
                    if (!ctx.graph.callMutates(static_cast<int>(n),
                                               call, root))
                        continue;
                    if (safeTail(toks, after, hi, indexVars, names))
                        continue;
                    findings.push_back(
                        {"reentrancy-hazard", file->path, call.line,
                         fn.displayName() + " holds an index into '" +
                             root + "' across '" + call.callee +
                             "', which can reach a mutator of it (" +
                             ctx.graph.witness(static_cast<int>(n),
                                               call, root) +
                             "); finish container updates before the "
                             "call or re-establish the index after"});
                    break;
                }
            }

            for (const Mutation &m : fn.mutations) {
                if (m.tok <= lo || m.tok >= hi ||
                    inAnyRange(nested, m.tok))
                    continue;
                // Appends never shift existing elements, so every
                // index the loop holds stays valid (this rule tracks
                // indexes, not iterators — capacity growth is
                // irrelevant here).
                if (m.method == "push_back" ||
                    m.method == "emplace_back" || m.method == "pushBack")
                    continue;
                auto it = held.find(m.root);
                if (it == held.end())
                    continue;
                const int after = matchFwd(toks, m.tok + 1, "(", ")") + 1;
                if (safeTail(toks, after, hi, indexVars, it->second))
                    continue;
                findings.push_back(
                    {"reentrancy-hazard", file->path, m.line,
                     fn.displayName() + ": '" + m.method + "()' on '" +
                         m.root + "' invalidates the index this loop "
                         "still uses afterwards; exit the loop or "
                         "re-establish the index after mutating"});
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: iterator-invalidation

/** Gang-lookup-style APIs: fill a scratch vector with pointers into
 *  the receiver, so mutating the receiver invalidates the scratch. */
bool
isGangWalkCallee(const std::string &callee)
{
    return callee == "gangLookup" || callee == "gangLookupTag" ||
           callee == "collectDirty" || callee == "collectHot" ||
           callee == "collectReferenced";
}

void
ruleIteratorInvalidation(const Context &ctx,
                         std::vector<Finding> &findings)
{
    std::map<const FunctionDef *, int> nodeOf;
    for (size_t i = 0; i < ctx.graph.nodes().size(); ++i)
        nodeOf[ctx.graph.nodes()[i].def] = static_cast<int>(i);

    for (size_t f = 0; f < ctx.files.size(); ++f) {
        const SourceFile &file = ctx.files[f];
        const FileIndex &index = ctx.indexes[f];
        const Tokens &toks = file.tokens;

        for (const FunctionDef &fn : index.functions) {
            const auto nested = nestedRanges(index, fn);

            // Scratch root -> table root, bound by gang-walk calls.
            std::map<std::string, std::string> gangBind;
            for (const CallSite &call : fn.calls) {
                if (!isGangWalkCallee(call.callee) ||
                    call.recvRoot.empty())
                    continue;
                for (const std::string &arg : call.argRoots) {
                    if (!arg.empty()) {
                        gangBind[arg] = call.recvRoot;
                        break;
                    }
                }
            }

            for (const LoopInfo &loop :
                 findLoops(toks, fn.bodyBegin + 1, fn.bodyEnd)) {
                if (inAnyRange(nested, loop.forTok))
                    continue;

                // root -> what the loop iterates ("" = the root
                // itself; else the scratch holding pointers into it).
                std::map<std::string, std::string> watched;
                if (loop.colon >= 0) {
                    bool laundered = false;
                    std::string root;
                    for (int j = loop.colon + 1; j < loop.headClose;
                         ++j) {
                        if (!toks[j].ident())
                            continue;
                        if (toks[j].text == "sortedSnapshot") {
                            laundered = true;  // iterates a copy
                            break;
                        }
                        if (root.empty()) {
                            const bool sub =
                                j + 1 < loop.headClose &&
                                toks[j + 1].is("[");
                            root = resolveRoot(fn, toks[j].text, sub);
                        }
                    }
                    if (laundered || root.empty())
                        continue;
                    watched[root] = "";
                    auto bind = gangBind.find(root);
                    if (bind != gangBind.end())
                        watched[bind->second] = root;
                } else {
                    // Classic loop walking a gang-lookup scratch.
                    for (int j = loop.headOpen + 1; j < loop.bodyEnd;
                         ++j) {
                        if (!toks[j].ident() || j + 1 >= loop.bodyEnd ||
                            !toks[j + 1].is("["))
                            continue;
                        const std::string root =
                            resolveRoot(fn, toks[j].text, false);
                        auto bind = gangBind.find(root);
                        if (bind != gangBind.end())
                            watched[bind->second] = root;
                    }
                }
                if (watched.empty())
                    continue;

                const int lo = loop.bodyBegin, hi = loop.bodyEnd;

                for (const Mutation &m : fn.mutations) {
                    if (m.tok <= lo || m.tok >= hi ||
                        inAnyRange(nested, m.tok))
                        continue;
                    auto w = watched.find(m.root);
                    if (w == watched.end())
                        continue;
                    findings.push_back(
                        {"iterator-invalidation", file.path, m.line,
                         w->second.empty()
                             ? "'" + m.root + "." + m.method +
                                   "()' mutates the container this "
                                   "range-for is iterating; collect "
                                   "first, mutate after the loop"
                             : "'" + m.root + "." + m.method +
                                   "()' invalidates the pointers the "
                                   "gang walk stored in '" +
                                   w->second + "'; finish the walk "
                                   "before mutating"});
                }

                auto node = nodeOf.find(&fn);
                if (node == nodeOf.end())
                    continue;  // non-src: no call graph
                for (const CallSite &call : fn.calls) {
                    if (call.tok <= lo || call.tok >= hi ||
                        inAnyRange(nested, call.tok))
                        continue;
                    for (const auto &[root, via] : watched) {
                        if (!ctx.graph.callMutates(node->second, call,
                                                   root))
                            continue;
                        findings.push_back(
                            {"iterator-invalidation", file.path,
                             call.line,
                             "'" + call.callee +
                                 "' can reach a mutator of '" + root +
                                 "' (" +
                                 ctx.graph.witness(node->second, call,
                                                   root) +
                                 ") while this loop iterates " +
                                 (via.empty()
                                      ? "it"
                                      : "pointers into it (via '" +
                                            via + "')") +
                                 "; collect first, mutate after the "
                                 "loop"});
                        break;
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: determinism-taint

bool
taintScope(const SourceFile &file)
{
    if (file.path.compare(0, 4, "src/") == 0)
        return file.dir != "src/base";  // base owns ordering machinery
    return file.path.compare(0, 6, "bench/") == 0 ||
           file.path.compare(0, 6, "tests/") == 0;
}

/** Names of unordered_map/unordered_set variables, project-wide. */
std::set<std::string>
collectUnordered(const Context &ctx)
{
    std::set<std::string> names;
    for (const SourceFile &file : ctx.files) {
        const Tokens &toks = file.tokens;
        for (size_t i = 0; i + 1 < toks.size(); ++i) {
            if (!toks[i].ident() ||
                (toks[i].text != "unordered_map" &&
                 toks[i].text != "unordered_set") ||
                !toks[i + 1].is("<"))
                continue;
            const int j = matchFwd(toks, static_cast<int>(i) + 1, "<",
                                   ">") + 1;
            if (j < static_cast<int>(toks.size()) && toks[j].ident())
                names.insert(toks[j].text);
        }
    }
    return names;
}

/**
 * Intra-function taint pass. Sources: range-for over an unordered
 * container (without sortedSnapshot) taints the loop's declared
 * names; `x = u.begin()` taints x. `=` propagates taint; compound
 * assignments (`+=` etc., which lex as op + '=') do not — they are
 * order-independent reductions. Returns whether the function can
 * return a tainted value; when @p report is set, sink flows are
 * appended as findings.
 */
bool
analyzeTaint(const SourceFile &file, const FunctionDef &fn,
             const std::set<std::string> &unordered,
             const std::set<std::string> &taintedFns,
             std::vector<Finding> *report)
{
    const Tokens &toks = file.tokens;
    const int hi = fn.bodyEnd;
    std::set<std::string> tainted;
    bool returnsTainted = false;

    auto spanTainted = [&](int from, int to) {
        for (int j = from; j < to; ++j)
            if (toks[j].ident() && toks[j].text == "sortedSnapshot")
                return false;  // laundered
        for (int j = from; j < to; ++j) {
            if (!toks[j].ident())
                continue;
            const std::string &t = toks[j].text;
            if (tainted.count(t))
                return true;
            if (taintedFns.count(t) && j + 1 < to && toks[j + 1].is("("))
                return true;
            if (unordered.count(t) && j + 2 < to &&
                (toks[j + 1].is(".") || toks[j + 1].is("->")) &&
                (toks[j + 2].text == "begin" ||
                 toks[j + 2].text == "cbegin"))
                return true;
        }
        return false;
    };

    auto stmtEnd = [&](int from) {
        int d = 0;
        int j = from;
        for (; j < hi; ++j) {
            if (toks[j].is("(") || toks[j].is("[") || toks[j].is("{"))
                ++d;
            else if (toks[j].is(")") || toks[j].is("]") ||
                     toks[j].is("}"))
                --d;
            else if (toks[j].is(";") && d == 0)
                break;
        }
        return j;
    };

    const bool benchLike =
        file.path.compare(0, 6, "bench/") == 0 ||
        file.path.compare(0, 6, "tests/") == 0;

    for (int i = fn.bodyBegin + 1; i < hi; ++i) {
        const Token &t = toks[i];
        if (!t.ident())
            continue;

        // Source: range-for over an unordered container.
        if (t.text == "for" && i + 1 < hi && toks[i + 1].is("(")) {
            const int headClose = matchFwd(toks, i + 1, "(", ")");
            int depth = 0;
            int colon = -1;
            for (int j = i + 1; j < headClose; ++j) {
                if (toks[j].is("(") || toks[j].is("[") || toks[j].is("{"))
                    ++depth;
                else if (toks[j].is(")") || toks[j].is("]") ||
                         toks[j].is("}"))
                    --depth;
                else if (toks[j].is(":") && depth == 1) {
                    colon = j;
                    break;
                } else if (toks[j].is(";") && depth == 1) {
                    break;
                }
            }
            if (colon >= 0) {
                bool source = false, snapshot = false;
                for (int j = colon + 1; j < headClose; ++j) {
                    if (!toks[j].ident())
                        continue;
                    if (toks[j].text == "sortedSnapshot")
                        snapshot = true;
                    else if (unordered.count(toks[j].text))
                        source = true;
                }
                if (source && !snapshot) {
                    for (int j = i + 2; j < colon; ++j) {
                        if (toks[j].ident() && toks[j].text != "auto" &&
                            toks[j].text != "const")
                            tainted.insert(toks[j].text);
                    }
                }
            }
            continue;
        }

        // Sink: a policy decision (any tainted return in src/policy);
        // also feeds the interprocedural tainted-return fixpoint.
        if (t.text == "return") {
            const int end = stmtEnd(i + 1);
            if (spanTainted(i + 1, end)) {
                returnsTainted = true;
                if (report && file.dir == "src/policy") {
                    report->push_back(
                        {"determinism-taint", file.path, t.line,
                         fn.displayName() +
                             " returns a value that depends on "
                             "unordered-container iteration order — a "
                             "nondeterministic policy decision; "
                             "iterate a sortedSnapshot() instead"});
                }
            }
            i = end;
            continue;
        }

        // Sink: trace emission.
        if (report && t.text == "emit" && i + 4 < hi &&
            toks[i + 1].is("(") && toks[i + 2].text == "TraceEventType") {
            const int close = matchFwd(toks, i + 1, "(", ")");
            if (spanTainted(i + 2, close)) {
                report->push_back(
                    {"determinism-taint", file.path, t.line,
                     "emit(TraceEventType::" + toks[i + 4].text +
                         ") payload depends on unordered-container "
                         "iteration order; trace output must be "
                         "deterministic — use sortedSnapshot()"});
            }
            i = close;
            continue;
        }

        // Sink: BENCH metric (JsonReport::add in bench/tests).
        if (report && benchLike && t.text == "add" && i > 0 &&
            (toks[i - 1].is(".") || toks[i - 1].is("->")) &&
            i + 1 < hi && toks[i + 1].is("(")) {
            const int close = matchFwd(toks, i + 1, "(", ")");
            if (spanTainted(i + 1, close)) {
                report->push_back(
                    {"determinism-taint", file.path, t.line,
                     "report metric depends on unordered-container "
                     "iteration order; BENCH output must be "
                     "deterministic — use sortedSnapshot()"});
            }
            i = close;
            continue;
        }

        // Propagation: plain assignment. `==` lexes as two '='
        // tokens; compound ops lex as op + '=' and never match here,
        // which is the deliberate commutative-reduction exemption.
        if (i + 1 < hi && toks[i + 1].is("=") &&
            !(i + 2 < hi && toks[i + 2].is("="))) {
            const int end = stmtEnd(i + 2);
            if (spanTainted(i + 2, end))
                tainted.insert(t.text);
            else
                tainted.erase(t.text);
            i = end;
        }
    }
    return returnsTainted;
}

void
ruleDeterminismTaint(const Context &ctx, std::vector<Finding> &findings)
{
    const std::set<std::string> unordered = collectUnordered(ctx);
    if (unordered.empty())
        return;

    // Fixpoint on functions whose return value carries taint, so
    // `victim = pickNoisy()` taints the caller too. Resolution is by
    // unqualified name, matching the call graph's over-approximation.
    std::set<std::string> taintedFns;
    for (int round = 0; round < 4; ++round) {
        bool changed = false;
        for (size_t f = 0; f < ctx.files.size(); ++f) {
            if (!taintScope(ctx.files[f]))
                continue;
            for (const FunctionDef &fn : ctx.indexes[f].functions) {
                if (isNestedDef(ctx.indexes[f], fn))
                    continue;
                if (!analyzeTaint(ctx.files[f], fn, unordered,
                                  taintedFns, nullptr))
                    continue;
                if (!fn.isLambda &&
                    taintedFns.insert(fn.name).second)
                    changed = true;
            }
        }
        if (!changed)
            break;
    }

    for (size_t f = 0; f < ctx.files.size(); ++f) {
        if (!taintScope(ctx.files[f]))
            continue;
        for (const FunctionDef &fn : ctx.indexes[f].functions) {
            if (isNestedDef(ctx.indexes[f], fn))
                continue;
            analyzeTaint(ctx.files[f], fn, unordered, taintedFns,
                         &findings);
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: shard-confinement

/** Matching '(' for the ')' at @p i, scanning backwards; -1 if none. */
int
matchBack2(const Tokens &toks, int i, const char *open, const char *close)
{
    int depth = 0;
    for (; i >= 0; --i) {
        if (toks[i].is(close))
            ++depth;
        else if (toks[i].is(open) && --depth == 0)
            return i;
    }
    return -1;
}

/** One class/struct body token range. */
struct ClassRange
{
    std::string name;
    int open = 0;   ///< '{'
    int close = 0;  ///< matching '}'
};

std::vector<ClassRange>
classRanges(const Tokens &toks)
{
    std::vector<ClassRange> ranges;
    const int n = static_cast<int>(toks.size());
    for (int i = 0; i + 2 < n; ++i) {
        if (!toks[i].ident() ||
            (toks[i].text != "class" && toks[i].text != "struct") ||
            !toks[i + 1].ident())
            continue;
        // Skip an optional base clause; a ';' first means a forward
        // declaration.
        int j = i + 2;
        while (j < n && !toks[j].is("{") && !toks[j].is(";"))
            ++j;
        if (j >= n || toks[j].is(";"))
            continue;
        ranges.push_back(
            {toks[i + 1].text, j, matchFwd(toks, j, "{", "}")});
    }
    return ranges;
}

/** Innermost class body containing token @p tok, or "". */
std::string
enclosingClass(const std::vector<ClassRange> &ranges, int tok)
{
    std::string best;
    int bestSpan = 1 << 30;
    for (const ClassRange &r : ranges) {
        if (tok > r.open && tok < r.close && r.close - r.open < bestSpan) {
            best = r.name;
            bestSpan = r.close - r.open;
        }
    }
    return best;
}

/**
 * Does the member path headed by token @p i get written here — plain
 * or compound assignment, increment/decrement, or any method call on
 * the path? (Inside MachineCore a method call on a `_member` is
 * treated as a write: the class has no const-method laundering worth
 * modelling, and reads of members never parenthesize.)
 */
bool
isMemberWrite(const Tokens &toks, int i, int end)
{
    if (i >= 2 && ((toks[i - 1].is("+") && toks[i - 2].is("+")) ||
                   (toks[i - 1].is("-") && toks[i - 2].is("-"))))
        return true;
    int j = i + 1;
    while (j + 1 < end && (toks[j].is(".") || toks[j].is("->")) &&
           toks[j + 1].ident())
        j += 2;
    if (j >= end)
        return false;
    if (toks[j].is("("))
        return true;
    if (toks[j].is("=") && !(j + 1 < end && toks[j + 1].is("=")))
        return true;
    if (j + 1 < end && toks[j + 1].is("=") &&
        (toks[j].is("+") || toks[j].is("-") || toks[j].is("*") ||
         toks[j].is("/") || toks[j].is("%") || toks[j].is("&") ||
         toks[j].is("|") || toks[j].is("^")))
        return true;
    if (j + 1 < end && ((toks[j].is("+") && toks[j + 1].is("+")) ||
                        (toks[j].is("-") && toks[j + 1].is("-"))))
        return true;
    return false;
}

/** Is @p name exempt as a barrier-drain coordinator method? */
bool
barrierExempt(const std::string &name)
{
    if (name == "barrier")
        return true;
    if (name.size() >= 9 &&
        name.compare(name.size() - 9, 9, "AtBarrier") == 0)
        return true;
    return name.compare(0, 5, "drain") == 0;
}

/**
 * Roots ("%k") of @p fn's parameters whose declared type mentions
 * ShardContext. Walks the parameter list backwards from the body;
 * bails (empty) when the head is obscured by a ctor init-list.
 */
std::set<std::string>
shardParamRoots(const Tokens &toks, const FunctionDef &fn)
{
    std::set<std::string> roots;
    int j = fn.bodyBegin - 1;
    while (j > 0 && (toks[j].ident() || toks[j].is("->") ||
                     toks[j].is("&") || toks[j].is("*") ||
                     toks[j].is("::") || toks[j].is("<") ||
                     toks[j].is(">")))
        --j;
    if (j <= 0 || !toks[j].is(")"))
        return roots;
    const int open = matchBack2(toks, j, "(", ")");
    if (open < 0)
        return roots;
    int depth = 0;
    int param = 0;
    bool mentions = false;
    for (int k = open + 1; k <= j; ++k) {
        if (toks[k].is("(") || toks[k].is("[") || toks[k].is("{") ||
            toks[k].is("<"))
            ++depth;
        else if (toks[k].is(")") || toks[k].is("]") || toks[k].is("}") ||
                 toks[k].is(">"))
            --depth;
        if ((k == j) || (toks[k].is(",") && depth == 0)) {
            if (mentions)
                roots.insert("%" + std::to_string(param));
            ++param;
            mentions = false;
            continue;
        }
        if (toks[k].ident() && toks[k].text == "ShardContext")
            mentions = true;
    }
    if (static_cast<size_t>(param) != fn.params.size())
        return {};  // head mis-parse (init list); be conservative
    return roots;
}

void
ruleShardConfinement(const Context &ctx, std::vector<Finding> &findings)
{
    const auto &nodes = ctx.graph.nodes();
    const int n = static_cast<int>(nodes.size());

    // Per-file class ranges, and the MachineCore member-name set
    // (every `_name` token inside a `class MachineCore { ... }`).
    std::map<std::string, std::vector<ClassRange>> rangesByFile;
    std::set<std::string> coreMembers;
    bool haveCore = false;
    for (const SourceFile &file : ctx.files) {
        auto ranges = classRanges(file.tokens);
        for (const ClassRange &r : ranges) {
            if (r.name != "MachineCore")
                continue;
            haveCore = true;
            for (int k = r.open + 1; k < r.close; ++k)
                if (file.tokens[k].ident() &&
                    file.tokens[k].text[0] == '_')
                    coreMembers.insert(file.tokens[k].text);
        }
        rangesByFile[file.path] = std::move(ranges);
    }
    if (!haveCore)
        return;

    // Per-node context: enclosing class, ShardContext-typed parameter
    // roots, and nested (lambda) token ranges.
    std::vector<std::string> klass(n);
    std::vector<std::set<std::string>> shardRoots(n);
    std::vector<std::vector<std::pair<int, int>>> nested(n);
    for (int i = 0; i < n; ++i) {
        const SourceFile *file = ctx.find(nodes[i].file);
        const FileIndex *index = ctx.findIndex(nodes[i].file);
        if (!file || !index)
            continue;
        const FunctionDef &fn = *nodes[i].def;
        klass[i] = !fn.qualifier.empty()
            ? fn.qualifier
            : enclosingClass(rangesByFile[nodes[i].file], fn.bodyBegin);
        shardRoots[i] = shardParamRoots(file->tokens, fn);
        nested[i] = nestedRanges(*index, fn);
    }

    // reach[i]: node i can write MachineCore state — directly (a
    // member write inside class MachineCore) or transitively through
    // a call chain. ShardContext's own methods are exempt carriers:
    // they hold the core by const reference, so a call received on a
    // ShardContext never reaches a core write.
    std::vector<char> reach(n, 0);
    std::vector<std::string> via(n);
    for (int i = 0; i < n; ++i) {
        if (klass[i] != "MachineCore")
            continue;
        const SourceFile *file = ctx.find(nodes[i].file);
        const FunctionDef &fn = *nodes[i].def;
        for (int k = fn.bodyBegin + 1; k < fn.bodyEnd; ++k) {
            const Token &t = file->tokens[k];
            if (t.ident() && coreMembers.count(t.text) &&
                isMemberWrite(file->tokens, k, fn.bodyEnd)) {
                reach[i] = 1;
                via[i] = nodes[i].def->displayName() + " writes '" +
                         t.text + "'";
                break;
            }
        }
    }
    for (bool changed = true; changed;) {
        changed = false;
        for (int i = 0; i < n; ++i) {
            if (reach[i] || klass[i] == "ShardContext")
                continue;
            for (const CallSite &call : nodes[i].def->calls) {
                if (inAnyRange(nested[i], call.tok) ||
                    shardRoots[i].count(call.recvRoot))
                    continue;
                for (int t : ctx.graph.byName(call.callee)) {
                    if (!reach[t] || klass[t] == "ShardContext")
                        continue;
                    reach[i] = 1;
                    via[i] = call.callee + " -> " + via[t];
                    changed = true;
                    break;
                }
                if (reach[i])
                    break;
            }
        }
    }

    // Flag: shard-scoped, non-barrier functions making a call that
    // reaches a core write. Calls received on the shard context are
    // its public (shard-local) API and never flagged.
    for (int i = 0; i < n; ++i) {
        const FunctionDef &fn = *nodes[i].def;
        const bool shardScoped =
            klass[i] == "ShardContext" || !shardRoots[i].empty();
        if (!shardScoped || barrierExempt(fn.name))
            continue;
        const SourceFile *file = ctx.find(nodes[i].file);
        if (!file)
            continue;
        for (const CallSite &call : fn.calls) {
            if (inAnyRange(nested[i], call.tok) ||
                shardRoots[i].count(call.recvRoot))
                continue;
            if (klass[i] == "ShardContext" && call.recvRoot.empty())
                continue;  // own shard-local API
            for (int t : ctx.graph.byName(call.callee)) {
                if (!reach[t] || klass[t] == "ShardContext")
                    continue;
                findings.push_back(
                    {"shard-confinement", file->path, call.line,
                     fn.displayName() + " runs in shard context but '" +
                         call.callee +
                         "' can write MachineCore-shared state (" +
                         via[t] +
                         "); shared state mutates only in *AtBarrier "
                         "methods — post the effect to the epoch "
                         "mailbox instead"});
                break;
            }
        }
    }
}

} // namespace

// The catalogue in rules.cc references these by name.
void
ruleReentrancyHazardEntry(const Context &ctx,
                          std::vector<Finding> &findings)
{
    ruleReentrancyHazard(ctx, findings);
}

void
ruleIteratorInvalidationEntry(const Context &ctx,
                              std::vector<Finding> &findings)
{
    ruleIteratorInvalidation(ctx, findings);
}

void
ruleDeterminismTaintEntry(const Context &ctx,
                          std::vector<Finding> &findings)
{
    ruleDeterminismTaint(ctx, findings);
}

void
ruleShardConfinementEntry(const Context &ctx,
                          std::vector<Finding> &findings)
{
    ruleShardConfinement(ctx, findings);
}

} // namespace klint
