/**
 * @file
 * klocsim — command-line front end to the KLOC simulator.
 *
 *   klocsim list
 *   klocsim run [--workload W] [--strategy S] [--ops N] [--scale K]
 *               [--ratio R] [--fast-gb G] [--huge-pages] [--shards N]
 *   klocsim optane [--workload W] [--mode M] [--ops N] [--scale K]
 *   klocsim characterize [--workload W] [--scale K]
 *
 * --shards runs the workload on the epoch engine's fixed 4-shard
 * decomposition with N worker threads (N=0 or "auto" takes the
 * KLOC_SHARDS environment default). Traces and metrics are
 * byte-identical at every N; only wall-clock changes. Workloads
 * without a ShardContext port are rejected with a diagnostic —
 * drop the flag to run them serially.
 *
 * Policies (--strategy): every name in policyNames() — all_fast
 *             all_slow naive autonuma nimble nimble++
 *             klocs_nomigration klocs nomad jenga kloc_nomad
 * Optane modes: static autonuma nimble klocs
 *
 * All run commands also accept --trace FILE (dump the event trace),
 * --check (enforce cross-subsystem invariants; exit 2 on violation),
 * --fault-spec FILE (deterministic fault injection; see
 * docs/FAULTS.md) and --fault-seed N (override the spec's seed).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <map>
#include <memory>
#include <string>

#include "platform/optane.hh"
#include "platform/two_tier.hh"
#include "trace/invariants.hh"
#include "workload/runner.hh"
#include "workload/workload.hh"

using namespace kloc;

namespace {

struct Args
{
    std::string workload = "rocksdb";
    std::string strategy = "klocs";
    std::string mode = "klocs";
    uint64_t ops = 60000;
    unsigned scale = 64;
    unsigned ratio = 8;
    uint64_t fastGb = 8;
    bool hugePages = false;
    bool fullStats = false;
    /** -1 = serial; 0 = auto (KLOC_SHARDS); >0 = worker threads. */
    int shards = -1;
    std::string tracePath;
    bool check = false;
    std::string faultSpecPath;
    uint64_t faultSeed = 0;  ///< 0 = keep the spec file's seed
};

Args
parseArgs(int argc, char **argv, int first)
{
    Args args;
    for (int i = first; i < argc; ++i) {
        const std::string flag = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("flag %s needs a value", flag.c_str());
            return argv[++i];
        };
        if (flag == "--workload")
            args.workload = value();
        else if (flag == "--strategy")
            args.strategy = value();
        else if (flag == "--mode")
            args.mode = value();
        else if (flag == "--ops")
            args.ops = std::strtoull(value(), nullptr, 10);
        else if (flag == "--scale")
            args.scale = static_cast<unsigned>(
                std::strtoul(value(), nullptr, 10));
        else if (flag == "--ratio")
            args.ratio = static_cast<unsigned>(
                std::strtoul(value(), nullptr, 10));
        else if (flag == "--fast-gb")
            args.fastGb = std::strtoull(value(), nullptr, 10);
        else if (flag == "--huge-pages")
            args.hugePages = true;
        else if (flag == "--shards") {
            const std::string v = value();
            args.shards = v == "auto"
                ? 0
                : static_cast<int>(std::strtol(v.c_str(), nullptr, 10));
            if (args.shards < 0)
                fatal("--shards wants a worker count or 'auto'");
        }
        else if (flag == "--stats")
            args.fullStats = true;
        else if (flag == "--trace")
            args.tracePath = value();
        else if (flag == "--check")
            args.check = true;
        else if (flag == "--fault-spec")
            args.faultSpecPath = value();
        else if (flag == "--fault-seed")
            args.faultSeed = std::strtoull(value(), nullptr, 10);
        else
            fatal("unknown flag '%s'", flag.c_str());
    }
    return args;
}

AutoNumaPolicy::Mode
parseMode(const std::string &name)
{
    static const std::map<std::string, AutoNumaPolicy::Mode> modes = {
        {"static", AutoNumaPolicy::Mode::Static},
        {"autonuma", AutoNumaPolicy::Mode::AutoNuma},
        {"nimble", AutoNumaPolicy::Mode::NimbleApp},
        {"klocs", AutoNumaPolicy::Mode::Kloc},
    };
    auto it = modes.find(name);
    if (it == modes.end())
        fatal("unknown optane mode '%s'", name.c_str());
    return it->second;
}

int
cmdList()
{
    std::printf("workloads:\n");
    for (const auto &name : workloadNames())
        std::printf("  %s\n", name.c_str());
    std::printf("policies (two-tier):\n");
    for (const auto &name : policyNames())
        std::printf("  %s\n", name.c_str());
    std::printf("optane modes:\n  static\n  autonuma\n  nimble\n"
                "  klocs\n");
    return 0;
}

/**
 * Configure fault injection from --fault-spec/--fault-seed. Called
 * after platform construction so tier offline/online events can be
 * scheduled against real tiers.
 */
void
applyFaults(System &sys, const Args &args)
{
    if (args.faultSpecPath.empty())
        return;
    std::ifstream in(args.faultSpecPath);
    if (!in)
        fatal("cannot read fault spec '%s'", args.faultSpecPath.c_str());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    FaultSpec spec;
    std::string err;
    if (!FaultSpec::parse(text, spec, &err))
        fatal("bad fault spec '%s': %s", args.faultSpecPath.c_str(),
              err.c_str());
    if (args.faultSeed != 0)
        spec.seed = args.faultSeed;
    for (const TierFaultEvent &event : spec.tierEvents) {
        if (event.tier < 0 ||
            static_cast<size_t>(event.tier) >= sys.tiers().tierCount()) {
            fatal("fault spec references tier %d; platform has %zu",
                  event.tier, sys.tiers().tierCount());
        }
    }
    sys.machine().faults().configure(spec);
    sys.migrator().scheduleTierEvents();
}

/** One-line fault/recovery summary when injection is armed. */
void
printFaultStats(System &sys)
{
    const FaultInjector &faults = sys.machine().faults();
    if (!faults.armed())
        return;
    std::printf("  faults          %llu injected",
                (unsigned long long)faults.totalFires());
    for (unsigned s = 0; s < kNumFaultSites; ++s) {
        const auto site = static_cast<FaultSite>(s);
        const auto &st = faults.siteStats(site);
        if (st.fires > 0) {
            std::printf(" %s=%llu/%llu", faultSiteName(site),
                        (unsigned long long)st.fires,
                        (unsigned long long)st.consults);
        }
    }
    std::printf("\n");
    const BlockLayer &blk = sys.fs().blockLayer();
    const Journal &journal = sys.fs().journal();
    const MigrationStats &mig = sys.migrator().stats();
    std::printf("  recovery        bio retries %llu, bio errors %llu, "
                "mig retries %llu, mig abandons %llu\n",
                (unsigned long long)blk.bioRetries(),
                (unsigned long long)blk.bioErrors(),
                (unsigned long long)mig.noSpaceRetries,
                (unsigned long long)mig.failedNoSpace);
    if (journal.crashes() > 0 || journal.commitAborts() > 0) {
        std::printf("  journal         %llu crashes, %llu recovered, "
                    "%llu commit aborts%s\n",
                    (unsigned long long)journal.crashes(),
                    (unsigned long long)journal.recoveredTxs(),
                    (unsigned long long)journal.commitAborts(),
                    journal.crashed() ? " (still crashed)" : "");
    }
    const PoisonStats &poison = sys.migrator().poisonStats();
    if (poison.poisonedFrames > 0) {
        std::printf("  hwpoison        %llu poisoned (%llu storm), "
                    "%llu shadow + %llu reread recovered, "
                    "%llu data loss, %llu pages quarantined\n",
                    (unsigned long long)poison.poisonedFrames,
                    (unsigned long long)poison.stormFrames,
                    (unsigned long long)poison.recoveredShadow,
                    (unsigned long long)poison.recoveredReread,
                    (unsigned long long)poison.dataLoss,
                    (unsigned long long)sys.tiers().quarantinedPages());
        for (size_t t = 0; t < sys.tiers().tierCount(); ++t) {
            const auto id = static_cast<TierId>(t);
            const TierHealth health = sys.tiers().health(id);
            if (health != TierHealth::Healthy) {
                std::printf("  tier %zu          health %s\n", t,
                            tierHealthName(health));
            }
        }
    }
}

/**
 * Turn on tracing (and the invariant checker) per --trace/--check.
 * Called after platform construction, so the checker runs in its
 * adopting mode for frames that predate the attach.
 */
std::unique_ptr<InvariantChecker>
startTracing(System &sys, const Args &args)
{
    if (args.tracePath.empty() && !args.check)
        return nullptr;
    sys.machine().tracer().setEnabled(true);
    if (!args.check)
        return nullptr;
    return std::make_unique<InvariantChecker>(sys.machine().tracer());
}

/**
 * Stop tracing, dump the ring to --trace's file, and report checker
 * results. @return 0, or 2 when invariants were violated.
 */
int
finishTracing(System &sys, const Args &args,
              std::unique_ptr<InvariantChecker> checker)
{
    Tracer &tracer = sys.machine().tracer();
    if (!tracer.enabled())
        return 0;
    tracer.setEnabled(false);
    if (!args.tracePath.empty()) {
        std::ofstream out(args.tracePath,
                          std::ios::binary | std::ios::trunc);
        if (!out)
            fatal("cannot write trace to '%s'", args.tracePath.c_str());
        out << tracer.serialize();
        std::printf("trace: %llu events (%llu dropped) -> %s\n",
                    (unsigned long long)tracer.emitted(),
                    (unsigned long long)tracer.dropped(),
                    args.tracePath.c_str());
    }
    if (!checker)
        return 0;
    std::fputs(checker->report().c_str(), stdout);
    return checker->clean() ? 0 : 2;
}

void
printCommonStats(System &sys)
{
    const MigrationStats &mig = sys.migrator().stats();
    std::printf("  migrations      %llu pages (%llu demoted / %llu "
                "promoted)\n",
                (unsigned long long)mig.migratedPages,
                (unsigned long long)mig.demotedPages,
                (unsigned long long)mig.promotedPages);
    const uint64_t refs =
        sys.machine().kernelRefs() + sys.machine().userRefs();
    std::printf("  kernel refs     %.1f%% of %llu\n",
                refs ? 100.0 *
                       static_cast<double>(sys.machine().kernelRefs()) /
                       static_cast<double>(refs)
                     : 0.0,
                (unsigned long long)refs);
    if (sys.kloc().enabled()) {
        const KlocStats &ks = sys.kloc().stats();
        std::printf("  kloc            %llu knodes, %llu objects "
                    "tracked, %.1f KiB metadata peak\n",
                    (unsigned long long)ks.knodesCreated,
                    (unsigned long long)ks.objectsTracked,
                    static_cast<double>(sys.kloc().peakMetadataBytes()) /
                        kKiB);
    }
}

int
cmdRun(const Args &args)
{
    TwoTierPlatform::Config config;
    config.scale = args.scale;
    config.fastCapacity = args.fastGb * kGiB;
    config.bandwidthRatio = args.ratio;
    const auto &known = policyNames();
    if (std::find(known.begin(), known.end(), args.strategy) ==
        known.end()) {
        fatal("unknown policy '%s' (see klocsim list)",
              args.strategy.c_str());
    }
    if (args.strategy == strategyName(StrategyKind::AllFast))
        config.fastCapacity += config.slowCapacity;
    TwoTierPlatform platform(config);
    System &sys = platform.sys();
    platform.applyPolicyByName(args.strategy);
    applyFaults(sys, args);
    sys.fs().startDaemons();
    auto checker = startTracing(sys, args);

    WorkloadConfig wl_config;
    wl_config.scale = args.scale;
    wl_config.operations = args.ops;
    wl_config.hugePages = args.hugePages;
    auto workload = makeWorkload(args.workload, wl_config);

    WorkloadResult result;
    ShardRunStats shard_stats{};
    if (args.shards >= 0) {
        if (!workload->shardable()) {
            fatal("workload '%s' has no ShardContext port and cannot "
                  "run under --shards; drop the flag to run it "
                  "serially, or port it (see docs/SHARDING.md)",
                  args.workload.c_str());
        }
        ShardPlan plan;
        plan.workers = static_cast<unsigned>(args.shards);
        const unsigned resolved = plan.workers
            ? plan.workers
            : ShardedEngine::defaultWorkers();
        std::printf("sharded: %u logical shards, %u worker thread%s "
                    "(traces are worker-count-invariant)\n",
                    plan.shards, resolved, resolved == 1 ? "" : "s");
        ShardedWorkloadRunner runner(sys, plan);
        result = runner.run(*workload);
        shard_stats = runner.stats();
    } else {
        result = runMeasured(sys, *workload);
    }

    std::printf("%s under %s: %.0f ops/s (%llu ops, %.1f ms virtual)\n",
                args.workload.c_str(), args.strategy.c_str(),
                result.throughput(),
                (unsigned long long)result.operations,
                static_cast<double>(result.elapsed) / kMillisecond);
    if (args.shards >= 0) {
        std::printf("  shard overhead  %llu epochs, %llu msgs, "
                    "%.2f ms barrier (%.2f ms merge) wall\n",
                    (unsigned long long)shard_stats.epochs,
                    (unsigned long long)shard_stats.messages,
                    static_cast<double>(shard_stats.barrierWallNs) / 1e6,
                    static_cast<double>(shard_stats.mergeWallNs) / 1e6);
    }
    printCommonStats(sys);
    printFaultStats(sys);
    if (args.fullStats)
        std::fputs(sys.snapshot().toString().c_str(), stdout);
    const int trace_rc = finishTracing(sys, args, std::move(checker));
    workload->teardown(sys);
    return trace_rc;
}

int
cmdOptane(const Args &args)
{
    OptanePlatform::Config config;
    config.scale = args.scale;
    OptanePlatform platform(config);
    System &sys = platform.sys();
    platform.setInterference(true);
    platform.applyPolicy(parseMode(args.mode));
    applyFaults(sys, args);
    sys.fs().startDaemons();
    auto checker = startTracing(sys, args);

    WorkloadConfig wl_config;
    wl_config.scale = args.scale;
    wl_config.operations = args.ops;
    platform.moveTaskToSocket(0);
    wl_config.cpus = platform.taskCpus();
    auto workload = makeWorkload(args.workload, wl_config);
    workload->setup(sys);
    sys.fs().syncAll();
    platform.moveTaskToSocket(1);
    workload->setCpus(platform.taskCpus());
    sys.machine().charge(kQuiesceWindow);
    workload->run(sys);  // convergence warm-up
    const WorkloadResult result = workload->run(sys);

    std::printf("%s on optane (%s): %.0f ops/s\n",
                args.workload.c_str(), args.mode.c_str(),
                result.throughput());
    printCommonStats(sys);
    printFaultStats(sys);
    const int trace_rc = finishTracing(sys, args, std::move(checker));
    workload->teardown(sys);
    return trace_rc;
}

int
cmdCharacterize(const Args &args)
{
    TwoTierPlatform::Config config;
    config.scale = args.scale;
    TwoTierPlatform platform(config);
    System &sys = platform.sys();
    platform.applyStrategy(StrategyKind::Naive);
    applyFaults(sys, args);
    sys.fs().startDaemons();
    auto checker = startTracing(sys, args);
    WorkloadConfig wl_config;
    wl_config.scale = args.scale;
    wl_config.operations = args.ops;
    auto workload = makeWorkload(args.workload, wl_config);
    runMeasured(sys, *workload);
    const int trace_rc = finishTracing(sys, args, std::move(checker));
    workload->teardown(sys);

    std::printf("%s characterization:\n", args.workload.c_str());
    std::printf("  cumulative pages by class:\n");
    std::printf("    %-12s %llu\n", "app",
                (unsigned long long)sys.heap().cumulativeAppPages());
    for (unsigned c = 1; c < kNumObjClasses; ++c) {
        const auto cls = static_cast<ObjClass>(c);
        std::printf("    %-12s %llu\n", objClassName(cls),
                    (unsigned long long)
                        sys.tiers().cumulativeAllocPages(cls));
    }
    std::printf("  object lifetimes (mean ms):\n");
    for (unsigned k = 0; k < kNumKobjKinds; ++k) {
        const auto kind = static_cast<KobjKind>(k);
        const auto &hist = sys.heap().objLifetimeHist(kind);
        if (hist.dist().count() == 0)
            continue;
        std::printf("    %-16s %10.3f  (n=%llu)\n", kobjKindName(kind),
                    hist.dist().mean() / kMillisecond,
                    (unsigned long long)hist.dist().count());
    }
    const MigrationStats &mig = sys.migrator().stats();
    std::printf("  migration outcomes (of %llu attempts):\n",
                (unsigned long long)mig.attempts);
    std::printf("    %-16s %llu\n", "moved_pages",
                (unsigned long long)mig.migratedPages);
    std::printf("    %-16s %llu\n", "no_space",
                (unsigned long long)mig.failedNoSpace);
    std::printf("    %-16s %llu\n", "no_space_retries",
                (unsigned long long)mig.noSpaceRetries);
    std::printf("    %-16s %llu\n", "not_relocatable",
                (unsigned long long)mig.failedNotRelocatable);
    std::printf("    %-16s %llu\n", "pinned",
                (unsigned long long)mig.failedPinned);
    std::printf("    %-16s %llu\n", "damped",
                (unsigned long long)mig.failedDamped);
    std::printf("    %-16s %llu\n", "offline",
                (unsigned long long)mig.failedOffline);
    std::printf("    %-16s %llu\n", "stale",
                (unsigned long long)mig.failedStale);
    printCommonStats(sys);
    printFaultStats(sys);
    return trace_rc;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: klocsim <list|run|optane|characterize> "
                     "[flags]\n");
        return 1;
    }
    const std::string command = argv[1];
    if (command == "list")
        return cmdList();
    const Args args = parseArgs(argc, argv, 2);
    if (command == "run")
        return cmdRun(args);
    if (command == "optane")
        return cmdOptane(args);
    if (command == "characterize")
        return cmdCharacterize(args);
    std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
    return 1;
}
